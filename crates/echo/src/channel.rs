//! ECho-style event channels: one source fanning events out to many
//! subscribers, each over its own coordinated RUDP connection.
//!
//! ECho's model is publish/subscribe: sources submit events to a
//! channel; subscribers receive them, possibly through *derived event
//! channels* that filter the stream. Here each subscription owns an
//! independent transport connection, coordination state, and adaptation
//! policy — so one congested subscriber can downsample or shed raw data
//! without affecting the others (the paper's multi-client collaboration
//! setting).

use iq_attrs::AttrList;
use iq_core::{CoordinationMode, Coordinator};
use iq_netsim::{time, Addr, Agent, Ctx, FlowId, Packet, Time};
use iq_rudp::{ConnEvent, RudpConfig, SenderConn, SenderDriver, DEFAULT_MSS, RUDP_TIMER_TOKEN};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::source::{Policy, FRAME_TIMER_TOKEN};

/// An event filter: `true` keeps the event for this subscriber. The
/// boxed form is ECho's "derived event channel" — a subscriber-supplied
/// predicate applied at the source.
pub type EventFilter = Box<dyn Fn(u64, u32) -> bool + Send>;

/// One subscriber of a channel.
pub struct Subscription {
    /// Connection identifier (must match the subscriber's sink).
    pub conn_id: u32,
    /// Where the subscriber's sink lives.
    pub peer: Addr,
    /// Flow tag for this subscriber's traffic.
    pub flow: FlowId,
    /// Transport configuration for this subscriber's connection.
    pub rudp: RudpConfig,
    /// Coordination mode for this subscriber.
    pub mode: CoordinationMode,
    /// Adaptation policy run on behalf of this subscriber.
    pub policy: Policy,
    /// Optional derived-channel filter.
    pub filter: Option<EventFilter>,
}

impl Subscription {
    /// A plain subscription with default transport settings.
    pub fn new(conn_id: u32, peer: Addr, flow: FlowId) -> Self {
        Self {
            conn_id,
            peer,
            flow,
            rudp: RudpConfig::default(),
            mode: CoordinationMode::Coordinated,
            policy: Policy::None,
            filter: None,
        }
    }
}

struct SubState {
    driver: SenderDriver,
    coordinator: Coordinator,
    policy: Policy,
    filter: Option<EventFilter>,
    /// Events offered to this subscriber (after filtering).
    offered: u64,
    /// Threshold callbacks (upper, lower).
    callbacks: (u64, u64),
    last_upper: Option<Time>,
}

/// Per-subscriber outcome summary.
#[derive(Debug, Clone, Copy)]
pub struct SubscriberReport {
    /// Connection id of the subscription.
    pub conn_id: u32,
    /// Events offered after filtering.
    pub offered: u64,
    /// Upper/lower callbacks fired.
    pub callbacks: (u64, u64),
    /// Window re-adjustments coordination applied.
    pub window_rescales: u64,
    /// Messages the transport discarded under coordination.
    pub discarded: u64,
}

/// A channel source fanning one frame schedule out to all subscribers.
pub struct ChannelSourceAgent {
    subs: Vec<SubState>,
    frame_sizes: Vec<u32>,
    fps: f64,
    datagram_mode: bool,
    min_adapt_gap: iq_netsim::TimeDelta,
    next_frame: usize,
    rng: SmallRng,
    datagram_idx: u64,
    events_scratch: Vec<ConnEvent>,
    finished: bool,
}

impl ChannelSourceAgent {
    /// Creates a channel over `frame_sizes` at `fps`, serving `subs`.
    pub fn new(frame_sizes: Vec<u32>, fps: f64, subs: Vec<Subscription>) -> Self {
        let subs = subs
            .into_iter()
            .map(|s| SubState {
                driver: SenderDriver::new(
                    SenderConn::new(s.conn_id, s.rudp.clone()),
                    s.peer,
                    s.flow,
                ),
                coordinator: Coordinator::new(s.mode),
                policy: s.policy,
                filter: s.filter,
                offered: 0,
                callbacks: (0, 0),
                last_upper: None,
            })
            .collect();
        Self {
            subs,
            frame_sizes,
            fps,
            datagram_mode: false,
            min_adapt_gap: time::secs(1.0),
            next_frame: 0,
            rng: SmallRng::seed_from_u64(0xec40),
            datagram_idx: 0,
            events_scratch: Vec::new(),
            finished: false,
        }
    }

    /// Splits frames into individually markable datagrams.
    pub fn datagram_mode(mut self) -> Self {
        self.datagram_mode = true;
        self
    }

    /// Whether the schedule has been fully emitted.
    pub fn schedule_done(&self) -> bool {
        self.finished
    }

    /// Per-subscriber summaries.
    pub fn reports(&self) -> Vec<SubscriberReport> {
        self.subs
            .iter()
            .map(|s| SubscriberReport {
                conn_id: s.driver.conn.conn_id(),
                offered: s.offered,
                callbacks: s.callbacks,
                window_rescales: s.coordinator.log().window_rescales,
                discarded: s.driver.conn.stats().msgs_discarded,
            })
            .collect()
    }

    fn process_events(&mut self, now: Time) {
        // One scratch buffer shared by every subscriber drain.
        let mut events = std::mem::take(&mut self.events_scratch);
        for s in &mut self.subs {
            s.coordinator.take_events_into(&mut s.driver.conn, &mut events);
            for ev in events.drain(..) {
                let (upper, cond) = match ev {
                    ConnEvent::UpperThreshold(c) => (true, c),
                    ConnEvent::LowerThreshold(c) => (false, c),
                    _ => continue,
                };
                if upper {
                    s.callbacks.0 += 1;
                    if let Some(last) = s.last_upper {
                        if now.saturating_sub(last) < self.min_adapt_gap {
                            continue;
                        }
                    }
                    s.last_upper = Some(now);
                } else {
                    s.callbacks.1 += 1;
                }
                let attrs = match &mut s.policy {
                    Policy::None => AttrList::new(),
                    Policy::Marking(m) => {
                        if upper {
                            m.on_upper(&cond)
                        } else {
                            m.on_lower(&cond)
                        }
                    }
                    Policy::Resolution(r) => {
                        if upper {
                            r.on_upper(&cond)
                        } else {
                            r.on_lower(&cond)
                        }
                    }
                    Policy::Frequency(f) => {
                        if upper {
                            f.on_upper(&cond)
                        } else {
                            f.on_lower(&cond)
                        }
                    }
                    Policy::Deferred(_) => AttrList::new(), // not supported on channels
                };
                s.coordinator.report_adaptation(&mut s.driver.conn, now, &attrs);
            }
        }
        self.events_scratch = events;
    }

    fn emit_frame(&mut self, now: Time) -> bool {
        let Some(&nominal) = self.frame_sizes.get(self.next_frame) else {
            return false;
        };
        let frame_no = self.next_frame as u64;
        self.next_frame += 1;
        for s in &mut self.subs {
            if let Some(filter) = &s.filter {
                if !filter(frame_no, nominal) {
                    continue; // derived channel dropped the event
                }
            }
            let scale = match &s.policy {
                Policy::Resolution(r) => r.scale,
                Policy::Deferred(d) => d.inner.scale,
                _ => 1.0,
            };
            let size = ((f64::from(nominal) * scale) as u32).max(64);
            if self.datagram_mode {
                let n = nominal.div_ceil(DEFAULT_MSS);
                let dlen = size.div_ceil(n).clamp(300.min(DEFAULT_MSS), DEFAULT_MSS);
                let mut remaining = size;
                for _ in 0..n {
                    let len = remaining.min(dlen);
                    if len == 0 {
                        break;
                    }
                    remaining -= len;
                    let marked = match &mut s.policy {
                        Policy::Marking(m) => m.mark(self.datagram_idx, &mut self.rng),
                        _ => true,
                    };
                    self.datagram_idx += 1;
                    s.offered += 1;
                    s.coordinator.send_with_attrs(
                        &mut s.driver.conn,
                        now,
                        len,
                        marked,
                        &AttrList::new(),
                    );
                }
            } else {
                s.offered += 1;
                s.coordinator.send_with_attrs(
                    &mut s.driver.conn,
                    now,
                    size,
                    true,
                    &AttrList::new(),
                );
            }
        }
        if self.next_frame >= self.frame_sizes.len() {
            self.finished = true;
            for s in &mut self.subs {
                s.driver.conn.finish();
            }
        }
        true
    }

    fn pump_all(&mut self, ctx: &mut Ctx<'_>) {
        for s in &mut self.subs {
            s.driver.pump(ctx);
        }
    }
}

impl Agent for ChannelSourceAgent {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(0, FRAME_TIMER_TOKEN);
        self.pump_all(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        let mut hit = false;
        for s in &mut self.subs {
            if s.driver.handle_packet(ctx, &pkt) {
                hit = true;
                break;
            }
        }
        if hit {
            self.process_events(ctx.now());
            self.pump_all(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            RUDP_TIMER_TOKEN => {
                // Timer tokens are shared by all drivers; ticking every
                // connection is harmless (idle ticks are no-ops).
                for s in &mut self.subs {
                    s.driver.handle_timer(ctx);
                }
                self.process_events(ctx.now());
                self.pump_all(ctx);
            }
            FRAME_TIMER_TOKEN => {
                let now = ctx.now();
                if self.emit_frame(now) && self.next_frame < self.frame_sizes.len() {
                    ctx.set_timer(time::secs(1.0 / self.fps), FRAME_TIMER_TOKEN);
                }
                self.process_events(now);
                self.pump_all(ctx);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EchoSinkAgent;
    use iq_netsim::{LinkSpec, Simulator};

    fn star_topology(sim: &mut Simulator, n: usize) -> (iq_netsim::NodeId, Vec<iq_netsim::NodeId>) {
        let hub = sim.add_node();
        let spokes: Vec<_> = (0..n)
            .map(|_| {
                let s = sim.add_node();
                sim.add_duplex_link(hub, s, LinkSpec::new(20e6, time::millis(5), 64_000));
                s
            })
            .collect();
        (hub, spokes)
    }

    #[test]
    fn fanout_delivers_to_every_subscriber() {
        let mut sim = Simulator::new(4);
        let (hub, spokes) = star_topology(&mut sim, 3);
        let subs: Vec<Subscription> = spokes
            .iter()
            .enumerate()
            .map(|(i, &s)| Subscription::new(i as u32 + 1, Addr::new(s, 1), FlowId(i as u32 + 1)))
            .collect();
        let src = ChannelSourceAgent::new(vec![1000; 100], 100.0, subs);
        let tx = sim.add_agent(hub, 1, Box::new(src));
        let sinks: Vec<_> = spokes
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                sim.add_agent(
                    s,
                    1,
                    Box::new(EchoSinkAgent::new(
                        i as u32 + 1,
                        RudpConfig::default(),
                        FlowId(i as u32 + 1),
                    )),
                )
            })
            .collect();
        sim.run_until(time::secs(30.0));
        assert!(sim.agent::<ChannelSourceAgent>(tx).unwrap().schedule_done());
        for id in sinks {
            let sink = sim.agent::<EchoSinkAgent>(id).unwrap();
            assert!(sink.is_finished());
            assert_eq!(sink.metrics.messages(), 100);
        }
    }

    #[test]
    fn derived_channel_filters_events() {
        let mut sim = Simulator::new(5);
        let (hub, spokes) = star_topology(&mut sim, 2);
        let full = Subscription::new(1, Addr::new(spokes[0], 1), FlowId(1));
        let mut derived = Subscription::new(2, Addr::new(spokes[1], 1), FlowId(2));
        // The derived channel only wants every third event.
        derived.filter = Some(Box::new(|frame, _size| frame % 3 == 0));
        let src = ChannelSourceAgent::new(vec![1000; 90], 100.0, vec![full, derived]);
        let tx = sim.add_agent(hub, 1, Box::new(src));
        let rx_full = sim.add_agent(
            spokes[0],
            1,
            Box::new(EchoSinkAgent::new(1, RudpConfig::default(), FlowId(1))),
        );
        let rx_derived = sim.add_agent(
            spokes[1],
            1,
            Box::new(EchoSinkAgent::new(2, RudpConfig::default(), FlowId(2))),
        );
        sim.run_until(time::secs(30.0));
        assert_eq!(
            sim.agent::<EchoSinkAgent>(rx_full).unwrap().metrics.messages(),
            90
        );
        assert_eq!(
            sim.agent::<EchoSinkAgent>(rx_derived)
                .unwrap()
                .metrics
                .messages(),
            30
        );
        let reports = sim.agent::<ChannelSourceAgent>(tx).unwrap().reports();
        assert_eq!(reports[0].offered, 90);
        assert_eq!(reports[1].offered, 30);
    }

    #[test]
    fn congested_subscriber_adapts_independently() {
        let mut sim = Simulator::new(6);
        let hub = sim.add_node();
        // Subscriber A: clean fat link. Subscriber B: thin link.
        let a = sim.add_node();
        sim.add_duplex_link(hub, a, LinkSpec::new(50e6, time::millis(5), 128_000));
        let b = sim.add_node();
        sim.add_duplex_link(hub, b, LinkSpec::new(0.8e6, time::millis(5), 8_000));

        let mut sub_a = Subscription::new(1, Addr::new(a, 1), FlowId(1));
        sub_a.rudp.upper_threshold = Some(0.05);
        sub_a.rudp.lower_threshold = Some(0.005);
        sub_a.policy = Policy::Resolution(crate::ResolutionAdapter::default());
        let mut sub_b = Subscription::new(2, Addr::new(b, 1), FlowId(2));
        sub_b.rudp.upper_threshold = Some(0.05);
        sub_b.rudp.lower_threshold = Some(0.005);
        sub_b.policy = Policy::Resolution(crate::ResolutionAdapter::default());
        let sink_cfg_a = sub_a.rudp.clone();
        let sink_cfg_b = sub_b.rudp.clone();

        let src =
            ChannelSourceAgent::new(vec![1400; 400], 100.0, vec![sub_a, sub_b]).datagram_mode();
        let tx = sim.add_agent(hub, 1, Box::new(src));
        let rx_a = sim.add_agent(a, 1, Box::new(EchoSinkAgent::new(1, sink_cfg_a, FlowId(1))));
        let rx_b = sim.add_agent(b, 1, Box::new(EchoSinkAgent::new(2, sink_cfg_b, FlowId(2))));
        sim.run_until(time::secs(120.0));

        let reports = sim.agent::<ChannelSourceAgent>(tx).unwrap().reports();
        // Only the congested subscriber adapted.
        assert_eq!(reports[0].callbacks.0, 0, "clean subscriber adapted");
        assert!(reports[1].callbacks.0 > 0, "congested subscriber never adapted");
        // Both still finished.
        assert!(sim.agent::<EchoSinkAgent>(rx_a).unwrap().is_finished());
        assert!(sim.agent::<EchoSinkAgent>(rx_b).unwrap().is_finished());
        // The congested subscriber received fewer bytes (downsampled).
        let bytes_a = sim.agent::<EchoSinkAgent>(rx_a).unwrap().metrics.bytes();
        let bytes_b = sim.agent::<EchoSinkAgent>(rx_b).unwrap().metrics.bytes();
        assert!(bytes_b < bytes_a, "B {bytes_b} !< A {bytes_a}");
    }
}
