//! The adaptive application source: IQ-ECho's sending side.
//!
//! Emits frames from a schedule (an MBone-derived trace or a constant
//! size), applies the configured adaptation policy in response to the
//! transport's threshold callbacks, and sends through the coordinator's
//! `CMwritev_attr`-style API so the transport learns what the
//! application changed.

use iq_attrs::AttrList;
use iq_core::{CoordinationMode, Coordinator};
use iq_netsim::{time, Addr, Agent, Ctx, FlowId, Packet, Time};
use iq_rudp::{ConnEvent, NetCond, RudpConfig, SenderConn, SenderDriver, DEFAULT_MSS};
use iq_telemetry::TelemetrySink;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::adapters::{adaptation_events, FrequencyAdapter, MarkingAdapter, ResolutionAdapter};
use crate::deferred::DeferredResolution;

/// Timer token for frame emission (fixed-rate sources).
pub const FRAME_TIMER_TOKEN: u64 = 0x4652_414d; // "FRAM"

/// Which application adaptation policy the source runs.
pub enum Policy {
    /// No application adaptation (transport-only rows).
    None,
    /// Reliability adaptation (§3.3).
    Marking(MarkingAdapter),
    /// Resolution adaptation (§3.4).
    Resolution(ResolutionAdapter),
    /// Resolution adaptation with frame-granularity deferral (§3.5).
    Deferred(DeferredResolution),
    /// Frequency adaptation.
    Frequency(FrequencyAdapter),
}

impl Policy {
    fn frame_scale(&self) -> f64 {
        match self {
            Policy::Resolution(r) => r.scale,
            Policy::Deferred(d) => d.inner.scale,
            _ => 1.0,
        }
    }

    fn interval_scale(&self) -> f64 {
        match self {
            Policy::Frequency(f) => f.interval_scale,
            _ => 1.0,
        }
    }
}

/// Configuration of an [`AdaptiveSourceAgent`].
pub struct SourceConfig {
    /// Connection identifier (must match the sink).
    pub conn_id: u32,
    /// Transport configuration (thresholds, congestion control, ...).
    pub rudp: RudpConfig,
    /// Coordination mode (the experiment's independent variable).
    pub mode: CoordinationMode,
    /// Frame sizes in emission order; the source finishes when the
    /// schedule is exhausted.
    pub frame_sizes: Vec<u32>,
    /// `Some(fps)` emits at a fixed rate; `None` emits as fast as the
    /// transport windows allow (greedy).
    pub fps: Option<f64>,
    /// Split frames into MSS-sized datagrams that are individually
    /// markable (required by the §3.3 marking experiments).
    pub datagram_mode: bool,
    /// Floor on scaled frame sizes.
    pub min_frame_bytes: u32,
    /// Greedy mode keeps this many segments queued in the transport.
    pub backlog_target: usize,
    /// Minimum time between successive upper-threshold adaptations —
    /// applications "do not want to be frequently interrupted for
    /// adaptation" (§2.3.1) and settle before reacting again.
    pub min_adapt_gap: iq_netsim::TimeDelta,
    /// Minimum time between successive lower-threshold (recovery)
    /// adaptations. The paper's recovery happens once per measuring
    /// period; our periods are much shorter, so the recovery cadence is
    /// rate-limited to stay comparable.
    pub min_lower_gap: iq_netsim::TimeDelta,
    /// RNG seed for marking decisions.
    pub seed: u64,
}

impl SourceConfig {
    /// A reasonable default around a frame schedule.
    pub fn new(conn_id: u32, frame_sizes: Vec<u32>) -> Self {
        Self {
            conn_id,
            rudp: RudpConfig::default(),
            mode: CoordinationMode::Coordinated,
            frame_sizes,
            fps: None,
            datagram_mode: false,
            min_frame_bytes: 64,
            backlog_target: 128,
            min_adapt_gap: time::secs(1.0),
            min_lower_gap: time::millis(400),
            seed: 1,
        }
    }
}

/// The sending application agent.
pub struct AdaptiveSourceAgent {
    driver: SenderDriver,
    coordinator: Coordinator,
    /// The adaptation policy in effect.
    pub policy: Policy,
    frame_sizes: Vec<u32>,
    fps: Option<f64>,
    datagram_mode: bool,
    min_frame_bytes: u32,
    backlog_target: usize,
    next_frame: usize,
    frames_emitted: u64,
    datagram_idx: u64,
    rng: SmallRng,
    /// Messages the application offered (including ones the transport
    /// discarded under coordination) — the denominator of "Mesgs Recvd %".
    pub offered_msgs: u64,
    /// Bytes the application offered.
    pub offered_bytes: u64,
    /// Threshold callbacks seen (upper, lower).
    pub callbacks: (u64, u64),
    min_adapt_gap: iq_netsim::TimeDelta,
    min_lower_gap: iq_netsim::TimeDelta,
    last_upper_adapt: Option<Time>,
    last_lower_adapt: Option<Time>,
    /// Per-period network-condition history.
    pub period_log: Vec<NetCond>,
    events_scratch: Vec<ConnEvent>,
    finished: bool,
}

impl AdaptiveSourceAgent {
    /// Builds the agent; `peer` is the sink's address.
    pub fn new(cfg: SourceConfig, policy: Policy, peer: Addr, flow: FlowId) -> Self {
        Self {
            driver: cfg.rudp.builder(cfg.conn_id, flow).build_sender(peer),
            coordinator: Coordinator::new(cfg.mode),
            policy,
            frame_sizes: cfg.frame_sizes,
            fps: cfg.fps,
            datagram_mode: cfg.datagram_mode,
            min_frame_bytes: cfg.min_frame_bytes,
            backlog_target: cfg.backlog_target,
            next_frame: 0,
            frames_emitted: 0,
            datagram_idx: 0,
            rng: SmallRng::seed_from_u64(cfg.seed),
            offered_msgs: 0,
            offered_bytes: 0,
            callbacks: (0, 0),
            min_adapt_gap: cfg.min_adapt_gap,
            min_lower_gap: cfg.min_lower_gap,
            last_upper_adapt: None,
            last_lower_adapt: None,
            period_log: Vec::new(),
            events_scratch: Vec::new(),
            finished: false,
        }
    }

    /// The underlying connection (stats, window).
    pub fn conn(&self) -> &SenderConn {
        &self.driver.conn
    }

    /// Attaches a telemetry sink to the underlying connection so the
    /// source's adaptation decisions land on the same bus as the
    /// transport's events.
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Self {
        let flow = self.driver.conn.telemetry_flow();
        self.driver.conn.set_telemetry(sink, flow);
        self
    }

    fn emit_adaptation(&self, now: Time, attrs: &AttrList) {
        let sink = self.driver.conn.telemetry();
        if sink.is_enabled() {
            let flow = self.driver.conn.telemetry_flow();
            for ev in adaptation_events(attrs) {
                sink.emit(now, flow, ev);
            }
        }
    }

    /// What coordination did during the run.
    pub fn coordination_log(&self) -> iq_core::CoordinationLog {
        self.coordinator.log()
    }

    /// Whether every frame has been submitted.
    pub fn schedule_done(&self) -> bool {
        self.finished
    }

    fn on_threshold(&mut self, now: Time, upper: bool, cond: NetCond) {
        if upper {
            self.callbacks.0 += 1;
            // Settle time: ignore upper callbacks arriving too soon
            // after the previous adaptation (often echoes of our own
            // adaptation transient).
            if let Some(last) = self.last_upper_adapt {
                if now.saturating_sub(last) < self.min_adapt_gap {
                    return;
                }
            }
            self.last_upper_adapt = Some(now);
        } else {
            self.callbacks.1 += 1;
            if let Some(last) = self.last_lower_adapt {
                if now.saturating_sub(last) < self.min_lower_gap {
                    return;
                }
            }
            self.last_lower_adapt = Some(now);
        }
        let attrs = match &mut self.policy {
            Policy::None => AttrList::new(),
            Policy::Marking(m) => {
                if upper {
                    m.on_upper(&cond)
                } else {
                    m.on_lower(&cond)
                }
            }
            Policy::Resolution(r) => {
                if upper {
                    r.on_upper(&cond)
                } else {
                    r.on_lower(&cond)
                }
            }
            Policy::Frequency(f) => {
                if upper {
                    f.on_upper(&cond)
                } else {
                    f.on_lower(&cond)
                }
            }
            Policy::Deferred(d) => d.on_threshold(upper, &cond, self.frames_emitted),
        };
        // The callback's return value flows back to the transport.
        self.emit_adaptation(now, &attrs);
        self.coordinator
            .report_adaptation(&mut self.driver.conn, now, &attrs);
    }

    fn process_events(&mut self, now: Time) {
        // Reuse one scratch buffer across polls; take it out of `self`
        // so the loop body may call `&mut self` handlers.
        let mut events = std::mem::take(&mut self.events_scratch);
        self.coordinator
            .take_events_into(&mut self.driver.conn, &mut events);
        for ev in events.drain(..) {
            match ev {
                ConnEvent::UpperThreshold(c) => self.on_threshold(now, true, c),
                ConnEvent::LowerThreshold(c) => self.on_threshold(now, false, c),
                ConnEvent::PeriodEnded(c) => self.period_log.push(c),
                _ => {}
            }
        }
        self.events_scratch = events;
    }

    /// Emits one frame; returns `false` when the schedule is exhausted.
    fn emit_frame(&mut self, now: Time) -> bool {
        let Some(&nominal) = self.frame_sizes.get(self.next_frame) else {
            self.finish_schedule();
            return false;
        };
        self.next_frame += 1;
        let frame_no = self.frames_emitted;
        self.frames_emitted += 1;

        // Deferred executions attach their attributes to this frame.
        let mut attrs = match &mut self.policy {
            Policy::Deferred(d) => d.on_frame(frame_no),
            _ => AttrList::new(),
        };
        self.emit_adaptation(now, &attrs);
        let size = ((nominal as f64 * self.policy.frame_scale()) as u32)
            .max(self.min_frame_bytes);

        if self.datagram_mode {
            // Frame becomes a burst of individually markable datagrams.
            // The datagram *count* follows the nominal frame so that a
            // resolution adaptation shrinks datagram size, not count —
            // down-sampling sends "less data in each message with the
            // previous frequency" (§2.3.2).
            let n = nominal.div_ceil(DEFAULT_MSS);
            // Datagrams keep a floor: real applications cannot shrink a
            // packet below its framing minimum, which also stops header
            // overhead from swallowing the goodput.
            let dlen = size.div_ceil(n).clamp(300.min(DEFAULT_MSS), DEFAULT_MSS);
            let mut remaining = size;
            for _ in 0..n {
                let len = remaining.min(dlen);
                if len == 0 {
                    break;
                }
                remaining -= len;
                let marked = match &mut self.policy {
                    Policy::Marking(m) => m.mark(self.datagram_idx, &mut self.rng),
                    _ => true,
                };
                self.datagram_idx += 1;
                self.offered_msgs += 1;
                self.offered_bytes += u64::from(len);
                let a = std::mem::take(&mut attrs);
                self.coordinator
                    .send_with_attrs(&mut self.driver.conn, now, len, marked, &a);
            }
        } else {
            self.offered_msgs += 1;
            self.offered_bytes += u64::from(size);
            self.coordinator
                .send_with_attrs(&mut self.driver.conn, now, size, true, &attrs);
        }
        if self.next_frame >= self.frame_sizes.len() {
            // Rate-based sources stop re-arming the frame timer after the
            // last frame, so the FIN must be requested here.
            self.finish_schedule();
        }
        true
    }

    fn finish_schedule(&mut self) {
        if !self.finished {
            self.finished = true;
            self.driver.conn.finish();
        }
    }

    fn refill_greedy(&mut self, now: Time) {
        if self.fps.is_some() {
            return;
        }
        while self.driver.conn.backlog_segments() < self.backlog_target {
            if !self.emit_frame(now) {
                break;
            }
        }
    }

    fn schedule_next_frame(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(fps) = self.fps {
            if self.next_frame < self.frame_sizes.len() {
                let base = 1e9 / fps;
                let interval = time::secs(base * self.policy.interval_scale() / 1e9);
                ctx.set_timer(interval, FRAME_TIMER_TOKEN);
            }
        }
    }
}

impl Agent for AdaptiveSourceAgent {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.fps.is_some() {
            ctx.set_timer(0, FRAME_TIMER_TOKEN);
        } else {
            self.refill_greedy(ctx.now());
        }
        self.driver.pump(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        if self.driver.handle_packet(ctx, &pkt) {
            self.process_events(ctx.now());
            self.refill_greedy(ctx.now());
            self.driver.pump(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.driver.on_timer(ctx, token) {
            self.process_events(ctx.now());
            self.refill_greedy(ctx.now());
            self.driver.pump(ctx);
        } else if token == FRAME_TIMER_TOKEN {
            let now = ctx.now();
            if self.emit_frame(now) {
                self.schedule_next_frame(ctx);
            }
            self.process_events(now);
            self.driver.pump(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iq_netsim::{LinkSpec, Simulator};
    use iq_rudp::RudpSinkAgent;

    fn run_source(policy: Policy, cfg_mut: impl FnOnce(&mut SourceConfig)) -> (u64, u64, f64) {
        let mut sim = Simulator::new(17);
        let a = sim.add_node();
        let b = sim.add_node();
        sim.add_duplex_link(a, b, LinkSpec::new(10e6, time::millis(5), 40_000));
        let mut cfg = SourceConfig::new(3, vec![1400; 300]);
        cfg.rudp.loss_tolerance = 0.4;
        cfg_mut(&mut cfg);
        let sink_cfg = cfg.rudp.clone();
        let src = AdaptiveSourceAgent::new(cfg, policy, Addr::new(b, 1), FlowId(1));
        let tx = sim.add_agent(a, 1, Box::new(src));
        let rx = sim.add_agent(b, 1, Box::new(RudpSinkAgent::new(3, sink_cfg, FlowId(1))));
        sim.run_until(time::secs(60.0));
        let src = sim.agent::<AdaptiveSourceAgent>(tx).unwrap();
        let sink = sim.agent::<RudpSinkAgent>(rx).unwrap();
        assert!(src.schedule_done(), "source did not finish its schedule");
        (src.offered_msgs, sink.metrics.messages(), src.conn().cwnd())
    }

    #[test]
    fn greedy_source_delivers_all_frames_without_adaptation() {
        let (offered, delivered, _) = run_source(Policy::None, |_| {});
        assert_eq!(offered, 300);
        assert_eq!(delivered, 300);
    }

    #[test]
    fn fixed_rate_source_paces_frames() {
        let mut sim = Simulator::new(18);
        let a = sim.add_node();
        let b = sim.add_node();
        sim.add_duplex_link(a, b, LinkSpec::new(10e6, time::millis(5), 40_000));
        let mut cfg = SourceConfig::new(4, vec![1000; 50]);
        cfg.fps = Some(100.0); // 10 ms apart
        let sink_cfg = cfg.rudp.clone();
        let src = AdaptiveSourceAgent::new(cfg, Policy::None, Addr::new(b, 1), FlowId(1));
        sim.add_agent(a, 1, Box::new(src));
        let rx = sim.add_agent(b, 1, Box::new(RudpSinkAgent::new(4, sink_cfg, FlowId(1))));
        sim.run_until(time::secs(10.0));
        let sink = sim.agent::<RudpSinkAgent>(rx).unwrap();
        assert_eq!(sink.metrics.messages(), 50);
        // Paced at 10 ms: mean inter-arrival close to that.
        let ia = sink.metrics.inter_arrival_s();
        assert!((ia - 0.010).abs() < 0.002, "inter-arrival = {ia}");
    }

    #[test]
    fn marking_policy_unmarks_under_loss() {
        // Constrain the link so drop-tail losses trigger the upper
        // threshold, then check the marking adapter engaged.
        let mut sim = Simulator::new(19);
        let a = sim.add_node();
        let b = sim.add_node();
        // Slow, shallow-buffered link: a greedy source overwhelms it.
        sim.add_duplex_link(a, b, LinkSpec::new(2e6, time::millis(5), 8_000));
        let mut cfg = SourceConfig::new(5, vec![1400; 400]);
        cfg.rudp.loss_tolerance = 0.4;
        cfg.rudp.upper_threshold = Some(0.05);
        cfg.rudp.lower_threshold = Some(0.01);
        cfg.datagram_mode = true;
        let sink_cfg = cfg.rudp.clone();
        let src = AdaptiveSourceAgent::new(
            cfg,
            Policy::Marking(MarkingAdapter::default()),
            Addr::new(b, 1),
            FlowId(1),
        );
        let tx = sim.add_agent(a, 1, Box::new(src));
        let rx = sim.add_agent(b, 1, Box::new(RudpSinkAgent::new(5, sink_cfg, FlowId(1))));
        sim.run_until(time::secs(60.0));
        let src = sim.agent::<AdaptiveSourceAgent>(tx).unwrap();
        assert!(src.callbacks.0 > 0, "upper threshold never fired");
        if let Policy::Marking(m) = &src.policy {
            assert!(m.adaptations > 0);
        } else {
            unreachable!()
        }
        // Coordination should have discarded some unmarked datagrams.
        assert!(src.conn().stats().msgs_discarded > 0);
        let sink = sim.agent::<RudpSinkAgent>(rx).unwrap();
        assert!(sink.metrics.messages() > 0);
        assert!(sink.metrics.messages() < src.offered_msgs);
    }

    #[test]
    fn frequency_policy_stretches_emission_under_loss() {
        let mut sim = Simulator::new(29);
        let a = sim.add_node();
        let b = sim.add_node();
        sim.add_duplex_link(a, b, LinkSpec::new(1.5e6, time::millis(5), 8_000));
        // 200 frames at 100 fps would take 2 s unloaded; the link only
        // carries ~1.5 Mb/s of the 1.12 Mb/s offered plus overhead, so
        // losses trigger frequency adaptation and stretch the schedule.
        let mut cfg = SourceConfig::new(7, vec![1400; 200]);
        cfg.fps = Some(100.0);
        cfg.rudp.upper_threshold = Some(0.05);
        cfg.rudp.lower_threshold = Some(0.005);
        let sink_cfg = cfg.rudp.clone();
        let src = AdaptiveSourceAgent::new(
            cfg,
            Policy::Frequency(crate::FrequencyAdapter::default()),
            Addr::new(b, 1),
            FlowId(1),
        );
        let tx = sim.add_agent(a, 1, Box::new(src));
        let rx = sim.add_agent(b, 1, Box::new(RudpSinkAgent::new(7, sink_cfg, FlowId(1))));
        sim.run_until(time::secs(120.0));
        let src = sim.agent::<AdaptiveSourceAgent>(tx).unwrap();
        let sink = sim.agent::<RudpSinkAgent>(rx).unwrap();
        assert!(src.schedule_done());
        // Frequency adaptation drops no messages.
        assert_eq!(sink.metrics.messages(), 200);
        if src.callbacks.0 > 0 {
            if let Policy::Frequency(f) = &src.policy {
                assert!(f.adaptations > 0);
            } else {
                unreachable!()
            }
            // The coordinator saw the ADAPT_FREQ reports but left the
            // window alone.
            assert!(src.coordination_log().frequency_reports > 0);
            assert_eq!(src.coordination_log().window_rescales, 0);
        }
    }

    #[test]
    fn resolution_policy_shrinks_frames_under_loss() {
        let mut sim = Simulator::new(23);
        let a = sim.add_node();
        let b = sim.add_node();
        sim.add_duplex_link(a, b, LinkSpec::new(2e6, time::millis(5), 8_000));
        let mut cfg = SourceConfig::new(6, vec![1400; 400]);
        cfg.rudp.upper_threshold = Some(0.05);
        cfg.rudp.lower_threshold = Some(0.005);
        let sink_cfg = cfg.rudp.clone();
        let src = AdaptiveSourceAgent::new(
            cfg,
            Policy::Resolution(ResolutionAdapter::default()),
            Addr::new(b, 1),
            FlowId(1),
        );
        let tx = sim.add_agent(a, 1, Box::new(src));
        let rx = sim.add_agent(b, 1, Box::new(RudpSinkAgent::new(6, sink_cfg, FlowId(1))));
        sim.run_until(time::secs(120.0));
        let src = sim.agent::<AdaptiveSourceAgent>(tx).unwrap();
        assert!(src.callbacks.0 > 0, "upper threshold never fired");
        if let Policy::Resolution(r) = &src.policy {
            assert!(r.adaptations > 0);
        } else {
            unreachable!()
        }
        // Coordination re-inflated the window at least once.
        assert!(src.coordination_log().window_rescales > 0);
        let sink = sim.agent::<RudpSinkAgent>(rx).unwrap();
        // Resolution adaptation never drops messages, only shrinks them.
        assert_eq!(sink.metrics.messages(), src.offered_msgs);
        assert!(sink.metrics.bytes() < 400 * 1400);
    }
}
