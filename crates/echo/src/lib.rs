//! # iq-echo
//!
//! The slice of the ECho middleware the paper's evaluation relies on:
//! an adaptive application source that emits frames from a schedule,
//! reacts to transport threshold callbacks with pluggable adaptation
//! policies (marking / resolution / frequency / deferred), and sends
//! through the coordinator's attribute-carrying `CMwritev_attr` path.
//!
//! The receiving side of a channel is `iq_rudp::RudpSinkAgent`
//! (re-exported as [`EchoSinkAgent`]): it reassembles messages and
//! records the receiver metrics the paper's tables report.

#![warn(missing_docs)]

pub mod adapters;
pub mod channel;
pub mod deferred;
pub mod sink;
pub mod source;

pub use adapters::{effective_eratio, FrequencyAdapter, MarkingAdapter, ResolutionAdapter};
pub use channel::{ChannelSourceAgent, EventFilter, SubscriberReport, Subscription};
pub use deferred::DeferredResolution;
pub use sink::{AdaptiveToleranceSink, TolerancePolicy};
pub use source::{AdaptiveSourceAgent, Policy, SourceConfig, FRAME_TIMER_TOKEN};

/// The receiving end of an IQ-ECho channel.
pub type EchoSinkAgent = iq_rudp::RudpSinkAgent;
