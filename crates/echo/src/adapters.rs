//! Application adaptation policies from the paper's evaluation.
//!
//! Each adapter encapsulates one application-level adaptation strategy,
//! reacting to the transport's error-ratio threshold callbacks and
//! describing what it did through `ADAPT_*` attributes (the paper's
//! callback-return / `CMwritev_attr` information flow).

use iq_attrs::{names, AttrList};
use iq_rudp::NetCond;
use rand::rngs::SmallRng;
use rand::Rng;

/// §3.3's reliability adaptation: trade reliability for timeliness by
/// probabilistically unmarking raw-data packets while keeping every
/// fifth packet tagged (control information that must be delivered).
#[derive(Debug, Clone)]
pub struct MarkingAdapter {
    /// One tagged packet every this many datagrams.
    pub tag_every: u64,
    /// Current probability of unmarking a non-control datagram.
    pub unmark_prob: f64,
    /// Cap on the unmarking probability.
    pub max_unmark: f64,
    /// How callbacks have moved the probability (diagnostics).
    pub adaptations: u64,
}

impl Default for MarkingAdapter {
    fn default() -> Self {
        Self {
            tag_every: 5,
            unmark_prob: 0.0,
            max_unmark: 0.95,
            adaptations: 0,
        }
    }
}

/// The error ratio adapters act on: the smoothed value (the paper's
/// measuring periods are long enough to smooth burst losses; our short
/// periods use an EWMA instead), bounded away from degenerate extremes.
pub fn effective_eratio(cond: &NetCond) -> f64 {
    cond.eratio_smoothed.clamp(0.0, 0.5)
}

impl MarkingAdapter {
    /// Upper-threshold callback: unmark with probability
    /// `max(0.40, 1.25·eratio)` (the paper's `max(40, (5/4)·eratio)` %).
    pub fn on_upper(&mut self, cond: &NetCond) -> AttrList {
        self.adaptations += 1;
        self.unmark_prob = (1.25 * effective_eratio(cond))
            .max(0.40)
            .min(self.max_unmark);
        AttrList::new().with(names::ADAPT_MARK, self.unmark_prob)
    }

    /// Lower-threshold callback: reduce the unmarking probability by 20
    /// percentage points.
    pub fn on_lower(&mut self, _cond: &NetCond) -> AttrList {
        self.adaptations += 1;
        self.unmark_prob = (self.unmark_prob - 0.20).max(0.0);
        AttrList::new().with(names::ADAPT_MARK, self.unmark_prob)
    }

    /// Marking decision for the `idx`-th datagram: control datagrams
    /// (every `tag_every`-th) are always tagged; the rest are unmarked
    /// with the current probability.
    pub fn mark(&mut self, idx: u64, rng: &mut SmallRng) -> bool {
        if idx.is_multiple_of(self.tag_every) {
            return true;
        }
        !(self.unmark_prob > 0.0 && rng.gen::<f64>() < self.unmark_prob)
    }
}

/// §3.4's resolution adaptation: down-sample data (shrink frames) by a
/// fraction equal to the error ratio on the upper threshold; grow frames
/// back by 10% on the lower threshold.
#[derive(Debug, Clone)]
pub struct ResolutionAdapter {
    /// Current frame-size scale in `(0, 1]`.
    pub scale: f64,
    /// Floor on the scale (the application's minimum useful resolution).
    pub min_scale: f64,
    /// Growth factor applied at the lower threshold.
    pub recovery_step: f64,
    /// Number of adaptations performed.
    pub adaptations: u64,
}

impl Default for ResolutionAdapter {
    fn default() -> Self {
        Self {
            scale: 1.0,
            min_scale: 0.25,
            recovery_step: 0.10,
            adaptations: 0,
        }
    }
}

impl ResolutionAdapter {
    /// Upper-threshold callback: reduce frame size by `rate_chg` equal to
    /// the error ratio. Returns the attributes describing the change.
    pub fn on_upper(&mut self, cond: &NetCond) -> AttrList {
        let rate_chg = effective_eratio(cond);
        let new_scale = (self.scale * (1.0 - rate_chg)).max(self.min_scale);
        if new_scale >= self.scale {
            return AttrList::new(); // already at the floor
        }
        // Effective change after the floor clamp.
        let effective = 1.0 - new_scale / self.scale;
        self.scale = new_scale;
        self.adaptations += 1;
        AttrList::new().with(names::ADAPT_PKTSIZE, effective)
    }

    /// Lower-threshold callback: increase frame size by 10%.
    pub fn on_lower(&mut self, _cond: &NetCond) -> AttrList {
        let new_scale = (self.scale * (1.0 + self.recovery_step)).min(1.0);
        if new_scale <= self.scale {
            return AttrList::new(); // already at full resolution
        }
        let effective = 1.0 - new_scale / self.scale; // negative: increase
        self.scale = new_scale;
        self.adaptations += 1;
        AttrList::new().with(names::ADAPT_PKTSIZE, effective)
    }

    /// Applies the current scale to a nominal frame size.
    pub fn apply(&self, nominal: u32, floor: u32) -> u32 {
        ((nominal as f64 * self.scale) as u32).max(floor)
    }
}

/// A frequency adaptation: send the same frames, less often.
#[derive(Debug, Clone)]
pub struct FrequencyAdapter {
    /// Multiplier on the inter-frame interval (≥ 1).
    pub interval_scale: f64,
    /// Ceiling on the interval stretch.
    pub max_interval_scale: f64,
    /// Number of adaptations performed.
    pub adaptations: u64,
}

impl Default for FrequencyAdapter {
    fn default() -> Self {
        Self {
            interval_scale: 1.0,
            max_interval_scale: 8.0,
            adaptations: 0,
        }
    }
}

impl FrequencyAdapter {
    /// Upper-threshold callback: reduce frequency by the error ratio
    /// (interval grows by `1/(1 − eratio)`).
    pub fn on_upper(&mut self, cond: &NetCond) -> AttrList {
        let chg = effective_eratio(cond);
        if chg <= 0.0 {
            return AttrList::new();
        }
        self.interval_scale = (self.interval_scale / (1.0 - chg)).min(self.max_interval_scale);
        self.adaptations += 1;
        AttrList::new().with(names::ADAPT_FREQ, chg)
    }

    /// Lower-threshold callback: increase frequency by 10%.
    pub fn on_lower(&mut self, _cond: &NetCond) -> AttrList {
        if self.interval_scale <= 1.0 {
            return AttrList::new();
        }
        self.interval_scale = (self.interval_scale / 1.1).max(1.0);
        self.adaptations += 1;
        AttrList::new().with(names::ADAPT_FREQ, -0.1)
    }
}

/// Maps the `ADAPT_*` attributes an adapter returned into telemetry
/// events, one per attribute present.
///
/// Pure translation, shared by every emit point that reports application
/// adaptations (the adaptive source, channels, the FTP agent): the
/// attribute list is already the paper's description of "what the
/// application did", so telemetry reuses it instead of inventing a
/// second vocabulary.
pub fn adaptation_events(attrs: &AttrList) -> Vec<iq_telemetry::TelemetryEvent> {
    use iq_telemetry::TelemetryEvent as E;
    let mut out = Vec::new();
    if let Some(unmark_prob) = attrs.get_float(names::ADAPT_MARK) {
        out.push(E::AdaptMark { unmark_prob });
    }
    if let Some(rate_chg) = attrs.get_float(names::ADAPT_PKTSIZE) {
        out.push(E::AdaptPktSize { rate_chg });
    }
    if let Some(rate_chg) = attrs.get_float(names::ADAPT_FREQ) {
        out.push(E::AdaptFreq { rate_chg });
    }
    if let Some(frames_ahead) = attrs.get_int(names::ADAPT_WHEN) {
        out.push(E::AdaptWhen { frames_ahead });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn cond(eratio: f64) -> NetCond {
        NetCond {
            eratio,
            eratio_smoothed: eratio,
            ..NetCond::default()
        }
    }

    #[test]
    fn marking_probability_follows_paper_formula() {
        let mut m = MarkingAdapter::default();
        // Small eratio: floor of 40%.
        let attrs = m.on_upper(&cond(0.10));
        assert!((m.unmark_prob - 0.40).abs() < 1e-12);
        assert_eq!(attrs.get_float(names::ADAPT_MARK), Some(0.40));
        // Large eratio: 1.25x of the (0.5-clamped) effective ratio.
        m.on_upper(&cond(0.44));
        assert!((m.unmark_prob - 0.55).abs() < 1e-12);
        // Ratios beyond the clamp saturate at 1.25 * 0.5.
        m.on_upper(&cond(0.9));
        assert!((m.unmark_prob - 0.625).abs() < 1e-12);
        // Lower threshold: -20 points.
        m.on_lower(&cond(0.01));
        assert!((m.unmark_prob - 0.425).abs() < 1e-12);
    }

    #[test]
    fn marking_tags_every_fifth_packet() {
        let mut m = MarkingAdapter::default();
        m.on_upper(&cond(0.9)); // heavy unmarking
        let mut rng = SmallRng::seed_from_u64(1);
        for idx in (0..100).step_by(5) {
            assert!(m.mark(idx, &mut rng), "control datagram must be tagged");
        }
        // Non-control datagrams get unmarked at roughly the probability.
        let unmarked = (0..10_000u64)
            .filter(|i| i % 5 != 0)
            .filter(|&i| !m.mark(i, &mut rng))
            .count();
        let frac = unmarked as f64 / 8000.0;
        assert!((frac - m.unmark_prob).abs() < 0.05, "frac = {frac}");
    }

    #[test]
    fn marking_inactive_marks_everything() {
        let mut m = MarkingAdapter::default();
        let mut rng = SmallRng::seed_from_u64(2);
        assert!((0..1000).all(|i| m.mark(i, &mut rng)));
    }

    #[test]
    fn resolution_scales_down_by_eratio_and_back_up() {
        let mut r = ResolutionAdapter::default();
        let attrs = r.on_upper(&cond(0.20));
        assert!((r.scale - 0.80).abs() < 1e-12);
        assert!((attrs.get_float(names::ADAPT_PKTSIZE).unwrap() - 0.2).abs() < 1e-12);
        let attrs = r.on_lower(&cond(0.0));
        assert!((r.scale - 0.88).abs() < 1e-12);
        // Increase reported as a negative rate_chg.
        assert!(attrs.get_float(names::ADAPT_PKTSIZE).unwrap() < 0.0);
    }

    #[test]
    fn resolution_floor_and_ceiling() {
        let mut r = ResolutionAdapter::default();
        for _ in 0..50 {
            r.on_upper(&cond(0.8));
        }
        assert!((r.scale - r.min_scale).abs() < 1e-9);
        // At the floor, further reductions report nothing.
        assert!(r.on_upper(&cond(0.8)).is_empty());
        for _ in 0..100 {
            r.on_lower(&cond(0.0));
        }
        assert!((r.scale - 1.0).abs() < 1e-12);
        assert!(r.on_lower(&cond(0.0)).is_empty());
    }

    #[test]
    fn resolution_apply_respects_floor() {
        let mut r = ResolutionAdapter::default();
        r.on_upper(&cond(0.5));
        assert_eq!(r.apply(1000, 64), 500);
        r.scale = 0.01;
        assert_eq!(r.apply(1000, 64), 64);
    }

    #[test]
    fn adaptation_events_map_each_attribute() {
        use iq_telemetry::TelemetryEvent as E;
        let attrs = AttrList::new()
            .with(names::ADAPT_PKTSIZE, 0.2)
            .with(names::ADAPT_WHEN, 20i64);
        let evs = adaptation_events(&attrs);
        assert!(evs.contains(&E::AdaptPktSize { rate_chg: 0.2 }));
        assert!(evs.contains(&E::AdaptWhen { frames_ahead: 20 }));
        assert_eq!(evs.len(), 2);
        assert!(adaptation_events(&AttrList::new()).is_empty());
    }

    #[test]
    fn frequency_stretches_interval() {
        let mut f = FrequencyAdapter::default();
        f.on_upper(&cond(0.5));
        assert!((f.interval_scale - 2.0).abs() < 1e-12);
        f.on_lower(&cond(0.0));
        assert!((f.interval_scale - 2.0 / 1.1).abs() < 1e-12);
        // Cannot go below 1.
        for _ in 0..100 {
            f.on_lower(&cond(0.0));
        }
        assert_eq!(f.interval_scale, 1.0);
        assert!(f.on_lower(&cond(0.0)).is_empty());
    }
}
