//! Pull-model metric registry.
//!
//! Hot paths own plain counter cells / histograms; after a run each
//! component *reports into* a [`Registry`] (cheap, off the hot path).
//! Metrics carry a [`Plane`]:
//!
//! - [`Plane::Sim`]: deterministic sim-time counters. Their canonical
//!   rendering must be byte-identical across `-j` worker counts and
//!   `--shards N`, and is folded into the determinism fingerprint.
//! - [`Plane::Engine`]: engine mechanics (scheduler bucket placement,
//!   payload-pool hits, shard windows, wall-clock phase times) that
//!   legitimately depend on thread scheduling — never fingerprinted.

use crate::hist::{Hist, HistSummary};

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Plane {
    /// Deterministic sim-time plane; folded into the fingerprint.
    Sim,
    /// Wall-clock / engine-mechanics plane; excluded from fingerprints.
    Engine,
}

impl Plane {
    pub fn as_str(self) -> &'static str {
        match self {
            Plane::Sim => "sim",
            Plane::Engine => "engine",
        }
    }
}

#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Counter(u64),
    Gauge(f64),
    Hist(HistSummary),
}

#[derive(Clone, Debug, PartialEq)]
pub struct Metric {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub plane: Plane,
    pub value: Value,
}

/// A flat, sortable collection of metrics for one scenario run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Registry {
    metrics: Vec<Metric>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    pub fn push(&mut self, m: Metric) {
        self.metrics.push(m);
    }

    pub fn counter(&mut self, plane: Plane, name: &str, labels: &[(&str, &str)], v: u64) {
        self.push(Metric {
            name: name.to_string(),
            labels: own_labels(labels),
            plane,
            value: Value::Counter(v),
        });
    }

    pub fn gauge(&mut self, plane: Plane, name: &str, labels: &[(&str, &str)], v: f64) {
        self.push(Metric {
            name: name.to_string(),
            labels: own_labels(labels),
            plane,
            value: Value::Gauge(v),
        });
    }

    pub fn hist(&mut self, plane: Plane, name: &str, labels: &[(&str, &str)], h: &Hist) {
        self.push(Metric {
            name: name.to_string(),
            labels: own_labels(labels),
            plane,
            value: Value::Hist(h.summarize()),
        });
    }

    /// Sum of a counter across all label sets (e.g. per-shard cells).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|m| m.name == name)
            .map(|m| match m.value {
                Value::Counter(v) => v,
                _ => 0,
            })
            .sum()
    }

    /// Canonical order: plane, then name, then labels. Rendering after
    /// `sort()` is independent of report-into order.
    pub fn sort(&mut self) {
        self.metrics
            .sort_by(|a, b| (a.plane, &a.name, &a.labels).cmp(&(b.plane, &b.name, &b.labels)));
    }

    /// Canonical text of the deterministic plane only — the byte string
    /// whose FNV digest is the *counter fingerprint*.
    pub fn sim_text(&self) -> String {
        let mut sorted = self.clone();
        sorted.sort();
        crate::expo::render_prom(&sorted, Some(Plane::Sim))
    }

    /// The counter fingerprint: FNV-1a of [`Registry::sim_text`].
    pub fn sim_fingerprint(&self) -> u64 {
        crate::fnv64(self.sim_text().as_bytes())
    }

    /// Append all metrics from `other` (used when a scenario has
    /// several collection sources).
    pub fn extend(&mut self, other: Registry) {
        self.metrics.extend(other.metrics);
    }
}

fn own_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_text_is_order_independent() {
        let mut a = Registry::new();
        a.counter(Plane::Sim, "iq_sim_events_total", &[("shard", "0")], 10);
        a.counter(Plane::Sim, "iq_sim_events_total", &[("shard", "1")], 20);
        a.counter(Plane::Engine, "iq_pool_hits_total", &[], 7);

        let mut b = Registry::new();
        b.counter(Plane::Engine, "iq_pool_hits_total", &[], 99); // engine plane ignored
        b.counter(Plane::Sim, "iq_sim_events_total", &[("shard", "1")], 20);
        b.counter(Plane::Sim, "iq_sim_events_total", &[("shard", "0")], 10);

        assert_eq!(a.sim_text(), b.sim_text());
        assert_eq!(a.sim_fingerprint(), b.sim_fingerprint());
        assert_eq!(a.counter_total("iq_sim_events_total"), 30);
    }
}
