//! Engine introspection for the IQ-RUDP workspace.
//!
//! This crate is deliberately dependency-free and sits below `netsim`,
//! `rudp`, and `experiments` in the crate graph. It provides:
//!
//! - plain-`u64` counter cells updated through zero-cost-when-disabled
//!   macros ([`counter_inc!`], [`counter_add!`], [`hist_record!`]) — hot
//!   paths never touch atomics or hash maps; each shard/component owns
//!   its own cells and they are merged in deterministic (shard-index)
//!   order at collection time;
//! - [`hist::Hist`], a log-linear (HDR-style) histogram whose merge is
//!   element-wise and therefore associative and commutative;
//! - [`profile::PhaseProfiler`], a wall-clock phase timer for the
//!   sharded-simulation worker loop (idle / ingress / execute / flush);
//! - [`registry::Registry`], the pull-model metric registry components
//!   report into after a run, split into two planes:
//!   [`registry::Plane::Sim`] for deterministic sim-time counters (folded
//!   into the determinism fingerprint) and [`registry::Plane::Engine`]
//!   for wall-clock / thread-schedule-dependent mechanics;
//! - [`expo`], Prometheus-style text exposition plus JSONL snapshots,
//!   and a parser used by CI to validate the exposition format.

pub mod expo;
pub mod hist;
pub mod profile;
pub mod registry;

pub use hist::Hist;
pub use profile::{Phase, PhaseProfiler, PhaseSnapshot};
pub use registry::{Metric, Plane, Registry, Value};

/// Whether instrumentation is compiled in. The macros below branch on
/// this constant, so with `--no-default-features` every instrumentation
/// site folds to nothing at compile time.
pub const ENABLED: bool = cfg!(feature = "enabled");

/// Increment a plain `u64` counter cell by one.
#[macro_export]
macro_rules! counter_inc {
    ($cell:expr) => {
        if $crate::ENABLED {
            $cell += 1;
        }
    };
}

/// Add `n` to a plain `u64` counter cell.
#[macro_export]
macro_rules! counter_add {
    ($cell:expr, $n:expr) => {
        if $crate::ENABLED {
            $cell += $n;
        }
    };
}

/// Record a value into a [`Hist`].
#[macro_export]
macro_rules! hist_record {
    ($hist:expr, $v:expr) => {
        if $crate::ENABLED {
            $hist.record($v);
        }
    };
}

/// FNV-1a over a byte slice; same constants as the telemetry
/// fingerprint so counter digests read consistently in reports.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macros_update_cells() {
        let mut c = 0u64;
        counter_inc!(c);
        counter_add!(c, 41);
        assert_eq!(c, if ENABLED { 42 } else { 0 });
    }

    #[test]
    fn fnv_matches_reference() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv64(b"a"), fnv64(b"b"));
    }
}
