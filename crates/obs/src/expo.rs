//! Metric exposition: Prometheus-style text format and JSONL snapshots,
//! plus a strict parser used by CI to validate emitted files.
//!
//! Histograms render as Prometheus summaries (`{quantile="…"}` series
//! plus `_sum`/`_count`), which keeps the log-linear bucket table out of
//! the wire format while staying parseable by standard scrapers.

use crate::registry::{Metric, Plane, Registry, Value};
use std::fmt::Write as _;

/// Render the registry (optionally one plane) as Prometheus text
/// exposition. The caller should `sort()` the registry first if
/// canonical byte output matters.
pub fn render_prom(reg: &Registry, plane: Option<Plane>) -> String {
    let mut out = String::new();
    let mut last_name = "";
    for m in reg.metrics() {
        if let Some(p) = plane {
            if m.plane != p {
                continue;
            }
        }
        if m.name != last_name {
            let ty = match m.value {
                Value::Counter(_) => "counter",
                Value::Gauge(_) => "gauge",
                Value::Hist(_) => "summary",
            };
            let _ = writeln!(out, "# TYPE {} {}", m.name, ty);
            last_name = &m.name;
        }
        match &m.value {
            Value::Counter(v) => {
                let _ = writeln!(out, "{}{} {}", m.name, label_str(m, &[]), v);
            }
            Value::Gauge(v) => {
                let _ = writeln!(out, "{}{} {}", m.name, label_str(m, &[]), fmt_f64(*v));
            }
            Value::Hist(h) => {
                for (q, v) in [
                    ("0", h.min),
                    ("0.5", h.p50),
                    ("0.9", h.p90),
                    ("0.99", h.p99),
                    ("0.999", h.p999),
                    ("1", h.max),
                ] {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        m.name,
                        label_str(m, &[("quantile", q)]),
                        v
                    );
                }
                let _ = writeln!(out, "{}_sum{} {}", m.name, label_str(m, &[]), h.sum);
                let _ = writeln!(out, "{}_count{} {}", m.name, label_str(m, &[]), h.count);
            }
        }
    }
    out
}

/// Render the registry as JSONL: one metric object per line.
pub fn render_jsonl(reg: &Registry, scenario: &str) -> String {
    let mut out = String::new();
    for m in reg.metrics() {
        let mut line = String::new();
        line.push_str("{\"scenario\":\"");
        json_escape_into(&mut line, scenario);
        line.push_str("\",\"name\":\"");
        json_escape_into(&mut line, &m.name);
        line.push_str("\",\"plane\":\"");
        line.push_str(m.plane.as_str());
        line.push_str("\",\"labels\":{");
        for (i, (k, v)) in m.labels.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push('"');
            json_escape_into(&mut line, k);
            line.push_str("\":\"");
            json_escape_into(&mut line, v);
            line.push('"');
        }
        line.push_str("},");
        match &m.value {
            Value::Counter(v) => {
                let _ = write!(line, "\"type\":\"counter\",\"value\":{}", v);
            }
            Value::Gauge(v) => {
                let _ = write!(line, "\"type\":\"gauge\",\"value\":{}", fmt_f64(*v));
            }
            Value::Hist(h) => {
                let _ = write!(
                    line,
                    "\"type\":\"summary\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                     \"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}",
                    h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99, h.p999
                );
            }
        }
        line.push('}');
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Strictly parse Prometheus text exposition; returns the number of
/// samples on success. Used by `iqrudp obs --verify` and CI to ensure
/// emitted files are well-formed.
pub fn validate_prom(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.split_whitespace();
            match parts.next() {
                Some("TYPE") => {
                    let name = parts
                        .next()
                        .ok_or_else(|| format!("line {n}: TYPE without metric name"))?;
                    check_name(name).map_err(|e| format!("line {n}: {e}"))?;
                    match parts.next() {
                        Some("counter" | "gauge" | "summary" | "histogram" | "untyped") => {}
                        other => return Err(format!("line {n}: bad TYPE kind {:?}", other)),
                    }
                }
                Some("HELP") => {}
                other => return Err(format!("line {n}: unknown comment {:?}", other)),
            }
            continue;
        }
        // sample: name[{labels}] value
        let (name_part, value_part) = match line.find(' ') {
            Some(_) => {
                let close_or_space = if let Some(open) = line.find('{') {
                    let close = line[open..]
                        .find('}')
                        .map(|i| open + i + 1)
                        .ok_or_else(|| format!("line {n}: unbalanced label braces"))?;
                    close
                } else {
                    line.find(' ').unwrap()
                };
                let (a, b) = line.split_at(close_or_space);
                (a, b.trim_start())
            }
            None => return Err(format!("line {n}: sample without value")),
        };
        let bare = name_part.split('{').next().unwrap_or("");
        check_name(bare).map_err(|e| format!("line {n}: {e}"))?;
        if let Some(open) = name_part.find('{') {
            let inner = &name_part[open + 1..name_part.len() - 1];
            if !inner.is_empty() {
                for pair in inner.split(',') {
                    let (k, v) = pair
                        .split_once('=')
                        .ok_or_else(|| format!("line {n}: label without '='"))?;
                    check_name(k).map_err(|e| format!("line {n}: {e}"))?;
                    if !(v.starts_with('"') && v.ends_with('"') && v.len() >= 2) {
                        return Err(format!("line {n}: unquoted label value {v:?}"));
                    }
                }
            }
        }
        value_part
            .parse::<f64>()
            .map_err(|_| format!("line {n}: bad sample value {value_part:?}"))?;
        samples += 1;
    }
    Ok(samples)
}

fn check_name(name: &str) -> Result<(), String> {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return Err(format!("bad metric/label name {name:?}")),
    }
    for c in chars {
        if !(c.is_ascii_alphanumeric() || c == '_' || c == ':') {
            return Err(format!("bad metric/label name {name:?}"));
        }
    }
    Ok(())
}

fn label_str(m: &Metric, extra: &[(&str, &str)]) -> String {
    if m.labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut s = String::from("{");
    let mut first = true;
    for (k, v) in m
        .labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra.iter().copied())
    {
        if !first {
            s.push(',');
        }
        first = false;
        let _ = write!(s, "{}=\"{}\"", k, v.replace('\\', "\\\\").replace('"', "\\\""));
    }
    s.push('}');
    s
}

/// Deterministic float formatting (shortest round-trip via `{}`); whole
/// floats keep a trailing `.0` so JSON consumers see a float.
fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') {
        s
    } else {
        format!("{s}.0")
    }
}

fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Hist;

    fn sample_registry() -> Registry {
        let mut r = Registry::new();
        r.counter(Plane::Sim, "iq_sim_events_total", &[("shard", "0")], 42);
        r.gauge(Plane::Engine, "iq_sched_wheel_events", &[("level", "1")], 3.5);
        let mut h = Hist::new();
        for v in [1u64, 10, 100, 1000] {
            h.record(v);
        }
        r.hist(Plane::Sim, "iq_sim_delivery_latency_ns", &[], &h);
        r
    }

    #[test]
    fn prom_round_trips_through_validator() {
        let mut r = sample_registry();
        r.sort();
        let text = render_prom(&r, None);
        let n = validate_prom(&text).expect("valid exposition");
        // 1 counter + 1 gauge + 6 quantiles + sum + count = 10 samples
        assert_eq!(n, 10);
        // Plane filter drops the gauge.
        let sim = render_prom(&r, Some(Plane::Sim));
        assert!(!sim.contains("iq_sched_wheel_events"));
        assert!(sim.contains("iq_sim_events_total{shard=\"0\"} 42"));
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_prom("9bad_name 1\n").is_err());
        assert!(validate_prom("name{x=1} 2\n").is_err());
        assert!(validate_prom("name 1.x\n").is_err());
        assert!(validate_prom("name{a=\"b\" 2\n").is_err());
    }

    #[test]
    fn jsonl_shape() {
        let r = sample_registry();
        let text = render_jsonl(&r, "unit");
        assert_eq!(text.lines().count(), 3);
        for line in text.lines() {
            assert!(line.starts_with("{\"scenario\":\"unit\""));
            assert!(line.ends_with('}'));
        }
        assert!(text.contains("\"type\":\"summary\""));
    }
}
