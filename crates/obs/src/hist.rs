//! Log-linear (HDR-style) histogram.
//!
//! Values are bucketed exactly below `1 << SUB_BITS` and log-linearly
//! above: each power-of-two octave is split into `1 << SUB_BITS` linear
//! sub-buckets, giving a bounded relative error of `1 / (1 << SUB_BITS)`
//! (~6%) across the full `u64` range with a fixed 976-slot table.
//!
//! Merging is element-wise addition of bucket counts, so it is
//! associative and commutative — shard-merge order cannot affect the
//! merged histogram (pinned by a proptest).

/// Linear sub-buckets per octave, as a bit count.
const SUB_BITS: u32 = 4;
const SUB: u64 = 1 << SUB_BITS;
/// Total buckets needed to cover `u64`: `SUB` exact buckets plus
/// `(64 - SUB_BITS)` octaves of `SUB` sub-buckets each.
const BUCKETS: usize = (SUB as usize) * (64 - SUB_BITS as usize + 1);

/// Fixed-size log-linear histogram of `u64` samples.
#[derive(Clone, Debug)]
pub struct Hist {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BITS;
        let sub = (v >> shift) - SUB;
        (((msb - SUB_BITS + 1) << SUB_BITS) + sub as u32) as usize
    }
}

/// Inclusive lower bound of bucket `b` (the smallest value mapping to it).
fn bucket_lower(b: usize) -> u64 {
    let b = b as u64;
    if b < SUB {
        b
    } else {
        let octave = b >> SUB_BITS;
        let sub = b & (SUB - 1);
        (SUB + sub) << (octave - 1)
    }
}

impl Hist {
    pub fn new() -> Self {
        Hist {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    /// Element-wise merge; associative and commutative by construction.
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        if other.count > 0 {
            if other.min < self.min {
                self.min = other.min;
            }
            if other.max > self.max {
                self.max = other.max;
            }
        }
    }

    /// Value at quantile `q` in `[0, 1]`: the lower bound of the first
    /// bucket whose cumulative count reaches `ceil(q * count)`.
    /// Deterministic (integer arithmetic only).
    pub fn quantile(&self, q_num: u64, q_den: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // rank in [1, count]
        let rank = ((self.count as u128 * q_num as u128).div_ceil(q_den as u128) as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_lower(i).max(self.min).min(self.max);
            }
        }
        self.max
    }

    /// Compact summary for the registry / exposition layer.
    pub fn summarize(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            sum: self.sum,
            min: self.min(),
            max: self.max(),
            p50: self.quantile(1, 2),
            p90: self.quantile(9, 10),
            p99: self.quantile(99, 100),
            p999: self.quantile(999, 1000),
        }
    }
}

/// Point-in-time summary of a [`Hist`], stored in the registry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistSummary {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub p999: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_sub() {
        for v in 0..SUB {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower(v as usize), v);
        }
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        // Every bucket's lower bound maps back to that bucket, and
        // bounds are strictly increasing.
        let mut prev = None;
        for b in 0..BUCKETS {
            let lo = bucket_lower(b);
            assert_eq!(bucket_index(lo), b, "bucket {b} lower {lo}");
            if let Some(p) = prev {
                assert!(lo > p);
            }
            prev = Some(lo);
        }
    }

    #[test]
    fn relative_error_bounded() {
        for &v in &[17u64, 100, 1_000, 123_456, u32::MAX as u64, 1 << 60] {
            let lo = bucket_lower(bucket_index(v));
            assert!(lo <= v);
            // Bucket width is at most lo / SUB for log-linear buckets.
            assert!((v - lo) as f64 <= lo as f64 / (SUB as f64 - 1.0) + 1.0);
        }
    }

    #[test]
    fn quantiles_and_merge() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        for v in 1..=100u64 {
            if v % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
        }
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.count(), 100);
        assert_eq!(m.sum(), 5050);
        assert_eq!(m.min(), 1);
        assert_eq!(m.max(), 100);
        let p50 = m.quantile(1, 2);
        assert!((48..=52).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn max_u64_does_not_panic() {
        let mut h = Hist::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
    }
}
