//! Wall-clock phase profiler for the sharded-simulation worker loop.
//!
//! Each shard owns one [`PhaseProfiler`]; the worker calls
//! [`PhaseProfiler::enter`] at phase boundaries (a handful of
//! `Instant::now()` calls per lookahead window, never per event). The
//! resulting breakdown answers the question the flat shard-scaling
//! curve could not: is a shard executing, flushing, draining ingress,
//! or lookahead-limited idle?
//!
//! Phase times are wall-clock and therefore live on the *engine* plane:
//! they are reported and recorded but never fingerprinted.

use std::time::Instant;

pub const PHASES: usize = 4;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Lookahead-limited (neighbor clocks too far behind) or not
    /// scheduled on a worker thread.
    Idle = 0,
    /// Draining cross-shard ingress mailboxes.
    Ingress = 1,
    /// Executing local events inside `run_window`.
    Execute = 2,
    /// Flushing the egress outbox to neighbor mailboxes.
    Flush = 3,
}

impl Phase {
    pub fn as_str(self) -> &'static str {
        PHASE_NAMES[self as usize]
    }
}

pub const PHASE_NAMES: [&str; PHASES] = ["idle", "ingress", "execute", "flush"];

#[derive(Debug)]
pub struct PhaseProfiler {
    current: Phase,
    since: Option<Instant>,
    nanos: [u64; PHASES],
}

impl Default for PhaseProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl PhaseProfiler {
    pub fn new() -> Self {
        PhaseProfiler {
            current: Phase::Idle,
            since: None,
            nanos: [0; PHASES],
        }
    }

    /// Close the current phase and start `phase`. The first call starts
    /// the clock without attributing the time before it.
    #[inline]
    pub fn enter(&mut self, phase: Phase) {
        if !crate::ENABLED {
            return;
        }
        let now = Instant::now();
        if let Some(since) = self.since {
            self.nanos[self.current as usize] += now.duration_since(since).as_nanos() as u64;
        }
        self.current = phase;
        self.since = Some(now);
    }

    /// Close the current phase and stop the clock.
    pub fn finish(&mut self) {
        if !crate::ENABLED {
            return;
        }
        if let Some(since) = self.since.take() {
            self.nanos[self.current as usize] +=
                Instant::now().duration_since(since).as_nanos() as u64;
        }
        self.current = Phase::Idle;
    }

    pub fn snapshot(&self) -> PhaseSnapshot {
        PhaseSnapshot { nanos: self.nanos }
    }

    pub fn reset(&mut self) {
        self.nanos = [0; PHASES];
        self.since = None;
        self.current = Phase::Idle;
    }
}

/// Accumulated per-phase wall time for one shard.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseSnapshot {
    pub nanos: [u64; PHASES],
}

impl PhaseSnapshot {
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    pub fn seconds(&self, phase: Phase) -> f64 {
        self.nanos[phase as usize] as f64 / 1e9
    }

    /// Percentage of total time in `phase` (0 when nothing recorded).
    pub fn percent(&self, phase: Phase) -> f64 {
        let total = self.total_nanos();
        if total == 0 {
            0.0
        } else {
            self.nanos[phase as usize] as f64 * 100.0 / total as f64
        }
    }

    /// One-line human summary, e.g. `exec 62.1% flush 3.0% ingress 1.2% idle 33.7%`.
    pub fn brief(&self) -> String {
        format!(
            "exec {:.1}% flush {:.1}% ingress {:.1}% idle {:.1}%",
            self.percent(Phase::Execute),
            self.percent(Phase::Flush),
            self.percent(Phase::Ingress),
            self.percent(Phase::Idle),
        )
    }

    pub fn merge(&mut self, other: &PhaseSnapshot) {
        for (a, b) in self.nanos.iter_mut().zip(other.nanos.iter()) {
            *a += *b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attributes_time_to_phases() {
        let mut p = PhaseProfiler::new();
        p.enter(Phase::Execute);
        std::hint::black_box((0..10_000).sum::<u64>());
        p.enter(Phase::Flush);
        p.finish();
        let snap = p.snapshot();
        if crate::ENABLED {
            assert!(snap.total_nanos() > 0);
            assert!(snap.nanos[Phase::Execute as usize] > 0);
        }
        // idle was never entered after the clock started
        assert_eq!(snap.nanos[Phase::Ingress as usize], 0);
        let _ = snap.brief();
    }
}
