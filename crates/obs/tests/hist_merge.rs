//! Shard-merge order independence: histogram merge must be associative
//! and commutative, because `ShardedSim` merges per-shard histograms in
//! shard-index order while a re-run may collect them from a different
//! number of worker threads. Element-wise bucket addition guarantees
//! this; the proptest pins it against refactors.

use iq_obs::Hist;
use proptest::{prop, proptest, ProptestConfig};

fn hist_of(values: &[u64]) -> Hist {
    let mut h = Hist::new();
    for &v in values {
        h.record(v);
    }
    h
}

fn render(h: &Hist) -> String {
    // Compare through the full public surface: summary plus a quantile
    // sweep, which is a function of every bucket count.
    let s = h.summarize();
    let mut out = format!(
        "{} {} {} {} {} {} {} {}",
        s.count, s.sum, s.min, s.max, s.p50, s.p90, s.p99, s.p999
    );
    for q in 1..=100u64 {
        out.push_str(&format!(" {}", h.quantile(q, 100)));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merge_is_commutative(a in prop::collection::vec(0u64..u64::MAX, 0..200), b in prop::collection::vec(0u64..u64::MAX, 0..200)) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        assert_eq!(render(&ab), render(&ba));
    }

    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(0u64..u64::MAX, 0..150),
        b in prop::collection::vec(0u64..u64::MAX, 0..150),
        c in prop::collection::vec(0u64..u64::MAX, 0..150),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        // (a ⊔ b) ⊔ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ⊔ (b ⊔ c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        assert_eq!(render(&left), render(&right));
    }

    #[test]
    fn merge_equals_concatenation(a in prop::collection::vec(0u64..u64::MAX, 0..200), b in prop::collection::vec(0u64..u64::MAX, 0..200)) {
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        let mut concat: Vec<u64> = a.clone();
        concat.extend_from_slice(&b);
        assert_eq!(render(&merged), render(&hist_of(&concat)));
    }
}
