//! # iq-tcp
//!
//! A TCP Reno model (slow start, congestion avoidance, fast
//! retransmit/recovery, retransmission timeouts) used as the baseline
//! transport in the IQ-RUDP evaluation (Tables 1 and 2). It shares the
//! simulator substrate and message-framing conventions with `iq-rudp`
//! so that experiment harnesses can swap transports freely.

#![warn(missing_docs)]

pub mod endpoint;
pub mod receiver;
pub mod rtt;
pub mod segment;
pub mod sender;

pub use endpoint::{
    TcpBulkSenderAgent, TcpReceiverDriver, TcpSenderDriver, TcpSinkAgent, TCP_TIMER_TOKEN,
};
pub use receiver::{TcpDeliveredMsg, TcpReceiverConn, TcpReceiverStats};
pub use segment::{tcp_wire_size, TcpAckSeg, TcpDataSeg, TcpPacket, TcpSegment};
pub use sender::{TcpConfig, TcpEvent, TcpSenderConn, TcpSenderStats};
