//! TCP receiving endpoint: cumulative ACKs (dup-ACKs on reorder), a
//! reorder buffer, and the same message-reassembly convention as the
//! RUDP receiver (without adaptive-reliability skipping — TCP delivers
//! everything).

use std::collections::{BTreeMap, VecDeque};

use iq_netsim::Time;

use crate::segment::{TcpAckSeg, TcpDataSeg, TcpSegment};
use crate::sender::{TcpConfig, TcpEvent};

/// A reassembled message (same shape as RUDP's, `marked` always true).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpDeliveredMsg {
    /// Message identifier.
    pub msg_id: u64,
    /// Total payload bytes.
    pub size: u32,
    /// When the sending application emitted it.
    pub sent_at: Time,
    /// When the last fragment arrived in order.
    pub delivered_at: Time,
}

/// Receiver counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct TcpReceiverStats {
    /// Data segments received, including duplicates.
    pub segments_received: u64,
    /// Duplicates.
    pub duplicates: u64,
    /// Messages delivered.
    pub msgs_delivered: u64,
}

#[derive(Debug)]
struct Assembly {
    msg_id: u64,
    frag_count: u16,
    next_frag: u16,
    bytes: u32,
    msg_sent_at: Time,
}

/// The TCP receiving state machine.
pub struct TcpReceiverConn {
    cfg: TcpConfig,
    conn_id: u32,
    established: bool,
    next_required: u64,
    buffer: BTreeMap<u64, TcpDataSeg>,
    assembly: Option<Assembly>,
    delivered: VecDeque<TcpDeliveredMsg>,
    outbox: VecDeque<TcpSegment>,
    events: Vec<TcpEvent>,
    fin_seq: Option<u64>,
    finished: bool,
    stats: TcpReceiverStats,
}

impl TcpReceiverConn {
    /// Creates a receiver for connection `conn_id`.
    pub fn new(conn_id: u32, cfg: TcpConfig) -> Self {
        Self {
            cfg,
            conn_id,
            established: false,
            next_required: 0,
            buffer: BTreeMap::new(),
            assembly: None,
            delivered: VecDeque::new(),
            outbox: VecDeque::new(),
            events: Vec::new(),
            fin_seq: None,
            finished: false,
            stats: TcpReceiverStats::default(),
        }
    }

    /// Connection identifier.
    pub fn conn_id(&self) -> u32 {
        self.conn_id
    }

    /// Counters.
    pub fn stats(&self) -> TcpReceiverStats {
        self.stats
    }

    /// Whether the stream ended and all data was delivered.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Drains completed messages.
    pub fn take_messages(&mut self) -> Vec<TcpDeliveredMsg> {
        self.delivered.drain(..).collect()
    }

    /// Drains lifecycle events.
    pub fn take_events(&mut self) -> Vec<TcpEvent> {
        std::mem::take(&mut self.events)
    }

    fn recv_window(&self) -> u32 {
        self.cfg
            .recv_buffer_segments
            .saturating_sub(self.buffer.len() as u32)
            .max(1)
    }

    fn push_ack(&mut self, echo_tx_at: Option<Time>) {
        self.outbox.push_back(TcpSegment::Ack(TcpAckSeg {
            cum_ack: self.next_required,
            recv_window: self.recv_window(),
            echo_tx_at,
        }));
    }

    /// Processes an incoming segment.
    pub fn on_segment(&mut self, now: Time, seg: &TcpSegment) {
        match seg {
            TcpSegment::Syn => {
                if !self.established {
                    self.established = true;
                    self.events.push(TcpEvent::Connected);
                }
                self.outbox.push_back(TcpSegment::SynAck {
                    recv_window: self.recv_window(),
                });
            }
            TcpSegment::Data(d) => {
                self.stats.segments_received += 1;
                let duplicate =
                    d.seq < self.next_required || self.buffer.contains_key(&d.seq);
                if duplicate {
                    self.stats.duplicates += 1;
                } else {
                    self.buffer.insert(d.seq, d.clone());
                }
                let in_order = d.seq == self.next_required;
                while self.buffer.contains_key(&self.next_required) {
                    self.deliver_next(now);
                }
                // In-order fresh data echoes RTT; reordered or duplicate
                // arrivals produce dup-ACKs without an echo.
                let echo = (in_order && !duplicate && !d.retransmit).then_some(d.tx_at);
                self.push_ack(echo);
                self.maybe_finish();
            }
            TcpSegment::Fin { final_seq } => {
                if self.finished {
                    self.outbox.push_back(TcpSegment::FinAck);
                } else {
                    self.fin_seq = Some(*final_seq);
                    self.maybe_finish();
                }
            }
            _ => {}
        }
    }

    fn deliver_next(&mut self, now: Time) {
        let seq = self.next_required;
        let d = self.buffer.remove(&seq).expect("caller checked");
        self.next_required += 1;
        if d.frag_idx == 0 {
            self.assembly = Some(Assembly {
                msg_id: d.msg_id,
                frag_count: d.frag_count,
                next_frag: 0,
                bytes: 0,
                msg_sent_at: d.msg_sent_at,
            });
        }
        let Some(asm) = self.assembly.as_mut() else {
            return;
        };
        debug_assert_eq!(asm.msg_id, d.msg_id, "TCP stream cannot lose fragments");
        asm.bytes += d.len;
        asm.next_frag += 1;
        if asm.next_frag == asm.frag_count {
            let asm = self.assembly.take().expect("just borrowed");
            self.stats.msgs_delivered += 1;
            self.delivered.push_back(TcpDeliveredMsg {
                msg_id: asm.msg_id,
                size: asm.bytes,
                sent_at: asm.msg_sent_at,
                delivered_at: now,
            });
        }
    }

    fn maybe_finish(&mut self) {
        if self.finished {
            return;
        }
        if let Some(fin) = self.fin_seq {
            if self.next_required >= fin {
                self.finished = true;
                self.events.push(TcpEvent::Finished);
                self.outbox.push_back(TcpSegment::FinAck);
            }
        }
    }

    /// Produces the next outgoing control/ACK segment.
    pub fn poll_transmit(&mut self, _now: Time) -> Option<TcpSegment> {
        self.outbox.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(seq: u64, msg_id: u64, frag_idx: u16, frag_count: u16) -> TcpSegment {
        TcpSegment::Data(TcpDataSeg {
            seq,
            msg_id,
            frag_idx,
            frag_count,
            len: 1400,
            msg_sent_at: 0,
            tx_at: 3,
            retransmit: false,
        })
    }

    fn acks(r: &mut TcpReceiverConn) -> Vec<TcpAckSeg> {
        std::iter::from_fn(|| r.poll_transmit(0))
            .filter_map(|s| match s {
                TcpSegment::Ack(a) => Some(a),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn in_order_delivery_and_cumulative_acks() {
        let mut r = TcpReceiverConn::new(1, TcpConfig::default());
        r.on_segment(0, &TcpSegment::Syn);
        r.on_segment(1, &data(0, 0, 0, 2));
        r.on_segment(2, &data(1, 0, 1, 2));
        let msgs = r.take_messages();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].size, 2800);
        let a = acks(&mut r);
        assert_eq!(a.last().unwrap().cum_ack, 2);
    }

    #[test]
    fn reorder_generates_dup_acks_without_echo() {
        let mut r = TcpReceiverConn::new(1, TcpConfig::default());
        r.on_segment(0, &TcpSegment::Syn);
        let _ = acks(&mut r);
        r.on_segment(1, &data(1, 1, 0, 1)); // gap at 0
        r.on_segment(2, &data(2, 2, 0, 1));
        let a = acks(&mut r);
        assert_eq!(a.len(), 2);
        assert!(a.iter().all(|x| x.cum_ack == 0 && x.echo_tx_at.is_none()));
        // Fill the hole: cumulative jump.
        r.on_segment(3, &data(0, 0, 0, 1));
        let a = acks(&mut r);
        assert_eq!(a.last().unwrap().cum_ack, 3);
        assert_eq!(r.take_messages().len(), 3);
    }

    #[test]
    fn duplicates_counted() {
        let mut r = TcpReceiverConn::new(1, TcpConfig::default());
        r.on_segment(0, &TcpSegment::Syn);
        r.on_segment(1, &data(0, 0, 0, 1));
        r.on_segment(2, &data(0, 0, 0, 1));
        assert_eq!(r.stats().duplicates, 1);
        assert_eq!(r.take_messages().len(), 1);
    }

    #[test]
    fn fin_finishes_after_all_data() {
        let mut r = TcpReceiverConn::new(1, TcpConfig::default());
        r.on_segment(0, &TcpSegment::Syn);
        r.on_segment(1, &data(1, 1, 0, 1));
        r.on_segment(2, &TcpSegment::Fin { final_seq: 2 });
        assert!(!r.is_finished());
        r.on_segment(3, &data(0, 0, 0, 1));
        assert!(r.is_finished());
    }
}
