//! TCP Reno sending endpoint (NewReno-style partial-ack handling).
//!
//! Implements the AIMD behaviour the paper contrasts RUDP against: slow
//! start, congestion avoidance, fast retransmit/recovery on three
//! duplicate ACKs, and multiplicative backoff on timeout — the dynamics
//! that make TCP traffic "bursty in nature" with "unstable QoS over
//! time" (§1).

use std::collections::{BTreeMap, VecDeque};

use iq_netsim::{Time, TimeDelta};

use crate::rtt::TcpRtt;
use crate::segment::{TcpAckSeg, TcpDataSeg, TcpSegment};

/// TCP model configuration.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Maximum payload per segment.
    pub mss: u32,
    /// Initial slow-start threshold, segments.
    pub initial_ssthresh: f64,
    /// Window ceiling, segments.
    pub max_cwnd: f64,
    /// RTO floor.
    pub min_rto: TimeDelta,
    /// RTO ceiling.
    pub max_rto: TimeDelta,
    /// Receive buffer, segments (receiver side).
    pub recv_buffer_segments: u32,
}

impl Default for TcpConfig {
    fn default() -> Self {
        Self {
            mss: 1400,
            initial_ssthresh: 64.0,
            max_cwnd: 1024.0,
            min_rto: iq_netsim::time::millis(200),
            max_rto: iq_netsim::time::secs(8.0),
            recv_buffer_segments: 2048,
        }
    }
}

/// Lifecycle events surfaced by the TCP endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpEvent {
    /// Handshake completed.
    Connected,
    /// Connection closed cleanly.
    Finished,
}

/// Sender counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct TcpSenderStats {
    /// Messages accepted from the application.
    pub msgs_submitted: u64,
    /// Data segments transmitted (including retransmissions).
    pub segments_sent: u64,
    /// Retransmissions only.
    pub retransmits: u64,
    /// Retransmission timeouts.
    pub timeouts: u64,
    /// Fast-retransmit episodes.
    pub fast_retransmits: u64,
    /// Segments acknowledged.
    pub segments_acked: u64,
    /// Payload bytes acknowledged.
    pub bytes_acked: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Idle,
    SynSent,
    Established,
    FinSent,
    Closed,
}

#[derive(Debug, Clone)]
struct PendingFrag {
    msg_id: u64,
    frag_idx: u16,
    frag_count: u16,
    len: u32,
    msg_sent_at: Time,
}

#[derive(Debug, Clone)]
struct InFlight {
    frag: PendingFrag,
    tx_at: Time,
    retransmitted: bool,
}

/// The TCP Reno sending state machine.
pub struct TcpSenderConn {
    cfg: TcpConfig,
    conn_id: u32,
    state: State,
    next_seq: u64,
    queue: VecDeque<PendingFrag>,
    inflight: BTreeMap<u64, InFlight>,
    /// Segments queued for retransmission (timeout go-back / partial ack).
    retx_queue: VecDeque<u64>,
    cwnd: f64,
    ssthresh: f64,
    dup_acks: u32,
    last_cum: u64,
    /// While `Some`, we are in fast recovery until cum_ack passes it.
    recovery_point: Option<u64>,
    peer_window: u32,
    rtt: TcpRtt,
    handshake_dirty: bool,
    handshake_deadline: Time,
    next_msg_id: u64,
    finish_requested: bool,
    events: Vec<TcpEvent>,
    stats: TcpSenderStats,
}

impl TcpSenderConn {
    /// Creates a sender for connection `conn_id`.
    pub fn new(conn_id: u32, cfg: TcpConfig) -> Self {
        let rtt = TcpRtt::new(cfg.min_rto, cfg.max_rto);
        let ssthresh = cfg.initial_ssthresh;
        Self {
            cfg,
            conn_id,
            state: State::Idle,
            next_seq: 0,
            queue: VecDeque::new(),
            inflight: BTreeMap::new(),
            retx_queue: VecDeque::new(),
            cwnd: 2.0,
            ssthresh,
            dup_acks: 0,
            last_cum: 0,
            recovery_point: None,
            peer_window: 1,
            rtt,
            handshake_dirty: true,
            handshake_deadline: 0,
            next_msg_id: 0,
            finish_requested: false,
            events: Vec::new(),
            stats: TcpSenderStats::default(),
        }
    }

    /// Connection identifier.
    pub fn conn_id(&self) -> u32 {
        self.conn_id
    }

    /// Counters.
    pub fn stats(&self) -> TcpSenderStats {
        self.stats
    }

    /// Congestion window, segments.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Smoothed RTT, milliseconds.
    pub fn srtt_ms(&self) -> f64 {
        self.rtt.srtt_ms()
    }

    /// Whether the connection is fully closed.
    pub fn is_closed(&self) -> bool {
        self.state == State::Closed
    }

    /// Untransmitted + unacknowledged segments.
    pub fn backlog_segments(&self) -> usize {
        self.queue.len() + self.inflight.len()
    }

    /// Drains pending events.
    pub fn take_events(&mut self) -> Vec<TcpEvent> {
        std::mem::take(&mut self.events)
    }

    /// Submits an application message of `size` bytes (always reliable).
    pub fn send_message(&mut self, now: Time, size: u32) -> u64 {
        assert!(size > 0, "empty messages are not allowed");
        let msg_id = self.next_msg_id;
        self.next_msg_id += 1;
        self.stats.msgs_submitted += 1;
        let frag_count = size.div_ceil(self.cfg.mss).max(1) as u16;
        let mut remaining = size;
        for idx in 0..frag_count {
            let len = remaining.min(self.cfg.mss);
            remaining -= len;
            self.queue.push_back(PendingFrag {
                msg_id,
                frag_idx: idx,
                frag_count,
                len,
                msg_sent_at: now,
            });
        }
        msg_id
    }

    /// No more messages will follow; FIN after drain.
    pub fn finish(&mut self) {
        self.finish_requested = true;
    }

    /// Processes an incoming segment.
    pub fn on_segment(&mut self, now: Time, seg: &TcpSegment) {
        match seg {
            TcpSegment::SynAck { recv_window }
                if matches!(self.state, State::SynSent | State::Idle) =>
            {
                self.state = State::Established;
                self.peer_window = (*recv_window).max(1);
                self.events.push(TcpEvent::Connected);
            }
            TcpSegment::Ack(ack) => self.on_ack(now, ack),
            TcpSegment::FinAck if self.state == State::FinSent => {
                self.state = State::Closed;
                self.events.push(TcpEvent::Finished);
            }
            _ => {}
        }
    }

    fn on_ack(&mut self, now: Time, ack: &TcpAckSeg) {
        if !matches!(self.state, State::Established | State::FinSent) {
            return;
        }
        self.peer_window = ack.recv_window.max(1);
        if ack.cum_ack > self.last_cum {
            // New data acknowledged.
            if let Some(tx_at) = ack.echo_tx_at {
                self.rtt.sample_times(tx_at, now);
            }
            let acked: Vec<u64> = self
                .inflight
                .range(..ack.cum_ack)
                .map(|(&s, _)| s)
                .collect();
            let n = acked.len();
            for seq in acked {
                let e = self.inflight.remove(&seq).expect("in range");
                self.stats.segments_acked += 1;
                self.stats.bytes_acked += u64::from(e.frag.len);
            }
            self.last_cum = ack.cum_ack;
            self.dup_acks = 0;
            match self.recovery_point {
                Some(rp) if ack.cum_ack >= rp => {
                    // Full recovery: deflate to ssthresh.
                    self.recovery_point = None;
                    self.cwnd = self.ssthresh;
                }
                Some(_) => {
                    // NewReno partial ack: retransmit the next hole.
                    if let Some((&seq, _)) = self.inflight.iter().next() {
                        self.retx_queue.push_back(seq);
                    }
                }
                None => {
                    for _ in 0..n {
                        if self.cwnd < self.ssthresh {
                            self.cwnd += 1.0; // slow start
                        } else {
                            self.cwnd += 1.0 / self.cwnd; // avoidance
                        }
                    }
                    self.cwnd = self.cwnd.min(self.cfg.max_cwnd);
                }
            }
        } else if ack.cum_ack == self.last_cum && !self.inflight.is_empty() {
            self.dup_acks += 1;
            if self.recovery_point.is_some() {
                // Inflation during recovery.
                self.cwnd = (self.cwnd + 1.0).min(self.cfg.max_cwnd);
            } else if self.dup_acks == 3 {
                // Fast retransmit.
                self.stats.fast_retransmits += 1;
                let flight = self.inflight.len() as f64;
                self.ssthresh = (flight / 2.0).max(2.0);
                self.cwnd = self.ssthresh + 3.0;
                self.recovery_point = Some(self.next_seq);
                if let Some((&seq, _)) = self.inflight.iter().next() {
                    self.retx_queue.push_back(seq);
                }
            }
        }
    }

    /// Clock tick: RTO and handshake retry handling.
    pub fn on_tick(&mut self, now: Time) {
        match self.state {
            State::SynSent | State::FinSent if now >= self.handshake_deadline => {
                self.handshake_dirty = true;
                self.rtt.on_timeout();
            }
            State::Established => {
                if let Some((&seq, entry)) = self.inflight.iter().next() {
                    if now >= entry.tx_at + self.rtt.rto() {
                        // Retransmission timeout: multiplicative backoff
                        // and slow-start restart.
                        self.stats.timeouts += 1;
                        self.rtt.on_timeout();
                        let flight = self.inflight.len() as f64;
                        self.ssthresh = (flight / 2.0).max(2.0);
                        self.cwnd = 1.0;
                        self.recovery_point = None;
                        self.dup_acks = 0;
                        self.retx_queue.clear();
                        self.retx_queue.push_back(seq);
                    }
                }
            }
            _ => {}
        }
    }

    /// Earliest time [`Self::on_tick`] must run again.
    pub fn next_timeout(&self, _now: Time) -> Option<Time> {
        match self.state {
            State::Closed => None,
            State::Idle => Some(0),
            State::SynSent | State::FinSent => Some(self.handshake_deadline),
            State::Established => self
                .inflight
                .values()
                .next()
                .map(|e| e.tx_at + self.rtt.rto()),
        }
    }

    fn can_send_new(&self) -> bool {
        let w = (self.cwnd.floor() as usize).max(1).min(self.peer_window as usize);
        self.inflight.len() < w
    }

    /// Produces the next segment to transmit, if any.
    pub fn poll_transmit(&mut self, now: Time) -> Option<TcpSegment> {
        match self.state {
            State::Idle => {
                self.state = State::SynSent;
                self.handshake_deadline = now + self.rtt.rto();
                self.handshake_dirty = false;
                Some(TcpSegment::Syn)
            }
            State::SynSent => self.handshake_dirty.then(|| {
                self.handshake_dirty = false;
                self.handshake_deadline = now + self.rtt.rto();
                TcpSegment::Syn
            }),
            State::Established => self.poll_established(now),
            State::FinSent => self.handshake_dirty.then(|| {
                self.handshake_dirty = false;
                self.handshake_deadline = now + self.rtt.rto();
                TcpSegment::Fin {
                    final_seq: self.next_seq,
                }
            }),
            State::Closed => None,
        }
    }

    fn poll_established(&mut self, now: Time) -> Option<TcpSegment> {
        // Retransmissions first.
        while let Some(seq) = self.retx_queue.pop_front() {
            let Some(entry) = self.inflight.get_mut(&seq) else {
                continue;
            };
            entry.tx_at = now;
            entry.retransmitted = true;
            self.stats.segments_sent += 1;
            self.stats.retransmits += 1;
            let f = &entry.frag;
            return Some(TcpSegment::Data(TcpDataSeg {
                seq,
                msg_id: f.msg_id,
                frag_idx: f.frag_idx,
                frag_count: f.frag_count,
                len: f.len,
                msg_sent_at: f.msg_sent_at,
                tx_at: now,
                retransmit: true,
            }));
        }
        if self.can_send_new() {
            if let Some(frag) = self.queue.pop_front() {
                let seq = self.next_seq;
                self.next_seq += 1;
                self.stats.segments_sent += 1;
                let seg = TcpDataSeg {
                    seq,
                    msg_id: frag.msg_id,
                    frag_idx: frag.frag_idx,
                    frag_count: frag.frag_count,
                    len: frag.len,
                    msg_sent_at: frag.msg_sent_at,
                    tx_at: now,
                    retransmit: false,
                };
                self.inflight.insert(
                    seq,
                    InFlight {
                        frag,
                        tx_at: now,
                        retransmitted: false,
                    },
                );
                return Some(TcpSegment::Data(seg));
            }
        }
        if self.finish_requested && self.queue.is_empty() && self.inflight.is_empty() {
            self.state = State::FinSent;
            self.handshake_deadline = now + self.rtt.rto();
            self.handshake_dirty = false;
            return Some(TcpSegment::Fin {
                final_seq: self.next_seq,
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iq_netsim::time::millis;

    fn establish(c: &mut TcpSenderConn) {
        assert!(matches!(c.poll_transmit(0), Some(TcpSegment::Syn)));
        c.on_segment(0, &TcpSegment::SynAck { recv_window: 1024 });
    }

    fn ack(cum: u64) -> TcpSegment {
        TcpSegment::Ack(TcpAckSeg {
            cum_ack: cum,
            recv_window: 1024,
            echo_tx_at: Some(0),
        })
    }

    #[test]
    fn slow_start_doubles_per_window() {
        let mut c = TcpSenderConn::new(1, TcpConfig::default());
        establish(&mut c);
        c.send_message(0, 1400 * 32);
        // cwnd 2: two segments out.
        assert!(c.poll_transmit(0).is_some());
        assert!(c.poll_transmit(0).is_some());
        assert!(c.poll_transmit(0).is_none());
        c.on_segment(millis(30), &ack(2));
        // Slow start: cwnd 2 -> 4.
        assert_eq!(c.cwnd(), 4.0);
    }

    #[test]
    fn congestion_avoidance_grows_linearly() {
        let mut c = TcpSenderConn::new(
            1,
            TcpConfig {
                initial_ssthresh: 2.0,
                ..TcpConfig::default()
            },
        );
        establish(&mut c);
        c.send_message(0, 1400 * 8);
        let _ = c.poll_transmit(0);
        let _ = c.poll_transmit(0);
        c.on_segment(millis(30), &ack(2));
        // Above ssthresh: growth is ~1/cwnd per acked segment.
        assert!(c.cwnd() > 2.0 && c.cwnd() < 3.1, "cwnd = {}", c.cwnd());
    }

    #[test]
    fn three_dup_acks_trigger_fast_retransmit() {
        let mut c = TcpSenderConn::new(1, TcpConfig::default());
        establish(&mut c);
        c.send_message(0, 1400 * 2);
        c.send_message(0, 1400 * 8);
        // Open the window by acking the first two.
        let _ = c.poll_transmit(0);
        let _ = c.poll_transmit(0);
        c.on_segment(millis(30), &ack(2));
        let mut sent = 0;
        while c.poll_transmit(millis(30)).is_some() {
            sent += 1;
        }
        assert!(sent >= 4, "need several in flight, got {sent}");
        // Three duplicate ACKs for seq 2.
        for _ in 0..3 {
            c.on_segment(millis(60), &ack(2));
        }
        assert_eq!(c.stats().fast_retransmits, 1);
        match c.poll_transmit(millis(61)) {
            Some(TcpSegment::Data(d)) => {
                assert_eq!(d.seq, 2);
                assert!(d.retransmit);
            }
            other => panic!("expected retransmit of 2, got {other:?}"),
        }
    }

    #[test]
    fn timeout_collapses_window_to_one() {
        let mut c = TcpSenderConn::new(1, TcpConfig::default());
        establish(&mut c);
        c.send_message(0, 1400 * 2);
        let _ = c.poll_transmit(0);
        let _ = c.poll_transmit(0);
        c.on_tick(millis(1500)); // initial RTO 1 s
        assert_eq!(c.stats().timeouts, 1);
        assert_eq!(c.cwnd(), 1.0);
        match c.poll_transmit(millis(1500)) {
            Some(TcpSegment::Data(d)) => assert!(d.retransmit && d.seq == 0),
            other => panic!("expected retransmit, got {other:?}"),
        }
    }

    #[test]
    fn recovery_exits_at_recovery_point() {
        let mut c = TcpSenderConn::new(1, TcpConfig::default());
        establish(&mut c);
        c.send_message(0, 1400 * 2);
        c.send_message(0, 1400 * 10);
        let _ = c.poll_transmit(0);
        let _ = c.poll_transmit(0);
        c.on_segment(millis(30), &ack(2));
        while c.poll_transmit(millis(30)).is_some() {}
        for _ in 0..3 {
            c.on_segment(millis(60), &ack(2));
        }
        let in_recovery_cwnd = c.cwnd();
        // Ack everything: recovery ends, cwnd deflates to ssthresh.
        c.on_segment(millis(90), &ack(12));
        assert!(c.cwnd() <= in_recovery_cwnd);
        assert_eq!(c.cwnd(), (4.0f64 / 2.0).max(2.0));
    }

    #[test]
    fn fin_closes_cleanly() {
        let mut c = TcpSenderConn::new(1, TcpConfig::default());
        establish(&mut c);
        c.send_message(0, 100);
        let _ = c.poll_transmit(0);
        c.finish();
        c.on_segment(millis(30), &ack(1));
        assert!(matches!(
            c.poll_transmit(millis(30)),
            Some(TcpSegment::Fin { .. })
        ));
        c.on_segment(millis(60), &TcpSegment::FinAck);
        assert!(c.is_closed());
    }
}
