//! RTT estimation for the TCP model (Jacobson/Karels, same structure as
//! the RUDP estimator but kept local so the baseline crate stands alone).

use iq_netsim::{time, Time, TimeDelta};

/// SRTT/RTTVAR estimator with exponential RTO backoff.
#[derive(Debug, Clone)]
pub struct TcpRtt {
    srtt: Option<f64>,
    rttvar: f64,
    min_rto: TimeDelta,
    max_rto: TimeDelta,
    backoff: u32,
}

impl TcpRtt {
    /// Creates an estimator with the given RTO clamps.
    pub fn new(min_rto: TimeDelta, max_rto: TimeDelta) -> Self {
        Self {
            srtt: None,
            rttvar: 0.0,
            min_rto,
            max_rto,
            backoff: 0,
        }
    }

    /// Records a sample from transmission/arrival timestamps.
    pub fn sample_times(&mut self, tx_at: Time, now: Time) {
        if now <= tx_at {
            return;
        }
        let rtt_s = (now - tx_at) as f64 / 1e9;
        match self.srtt {
            None => {
                self.srtt = Some(rtt_s);
                self.rttvar = rtt_s / 2.0;
            }
            Some(srtt) => {
                let err = rtt_s - srtt;
                self.rttvar = 0.75 * self.rttvar + 0.25 * err.abs();
                self.srtt = Some(srtt + err / 8.0);
            }
        }
        self.backoff = 0;
    }

    /// Smoothed RTT in milliseconds (0 before the first sample).
    pub fn srtt_ms(&self) -> f64 {
        self.srtt.unwrap_or(0.0) * 1e3
    }

    /// Current retransmission timeout including backoff.
    pub fn rto(&self) -> TimeDelta {
        let base = match self.srtt {
            None => time::millis(1000),
            Some(srtt) => time::secs(srtt + 4.0 * self.rttvar),
        };
        base.clamp(self.min_rto, self.max_rto)
            .saturating_mul(1u64 << self.backoff.min(6))
            .min(self.max_rto)
    }

    /// Doubles the RTO after a retransmission timeout.
    pub fn on_timeout(&mut self) {
        self.backoff = (self.backoff + 1).min(6);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iq_netsim::time::millis;

    #[test]
    fn converges_and_backs_off() {
        let mut r = TcpRtt::new(millis(200), time::secs(8.0));
        assert_eq!(r.rto(), millis(1000));
        for i in 0..40u64 {
            r.sample_times(i * 1_000_000_000, i * 1_000_000_000 + 30_000_000);
        }
        assert!((r.srtt_ms() - 30.0).abs() < 0.5);
        let base = r.rto();
        r.on_timeout();
        assert!(r.rto() >= base * 2 || r.rto() == time::secs(8.0));
        r.sample_times(0, 30_000_000);
        assert!(r.rto() <= base + millis(10));
    }
}
