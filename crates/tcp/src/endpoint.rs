//! Simulator glue for the TCP model: drivers plus bulk/sink agents,
//! mirroring the RUDP endpoint layer.

use iq_metrics::FlowMetrics;
use iq_netsim::{payload, Addr, Agent, Ctx, FlowId, Packet, Time, TimerId};

use crate::receiver::{TcpDeliveredMsg, TcpReceiverConn};
use crate::segment::{tcp_wire_size, TcpPacket};
use crate::sender::{TcpConfig, TcpSenderConn};

/// Timer token reserved for TCP protocol ticks.
pub const TCP_TIMER_TOKEN: u64 = 0x5443_5054; // "TCPT"

/// Embeds a [`TcpSenderConn`] into an agent.
pub struct TcpSenderDriver {
    /// The protocol state machine.
    pub conn: TcpSenderConn,
    peer: Addr,
    flow: FlowId,
    armed: Option<(Time, TimerId)>,
}

impl TcpSenderDriver {
    /// Creates a driver toward `peer` tagging packets with `flow`.
    pub fn new(conn: TcpSenderConn, peer: Addr, flow: FlowId) -> Self {
        Self {
            conn,
            peer,
            flow,
            armed: None,
        }
    }

    /// Feeds an incoming packet; returns `true` when consumed.
    pub fn handle_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) -> bool {
        let Some(tp) = pkt.payload_as::<TcpPacket>() else {
            return false;
        };
        if tp.conn_id != self.conn.conn_id() {
            return false;
        }
        self.conn.on_segment(ctx.now(), &tp.segment);
        true
    }

    /// Handles the protocol timer tick. Only a timer that actually
    /// reached its deadline is considered consumed, so several drivers
    /// may share one agent's timer token safely.
    pub fn handle_timer(&mut self, ctx: &mut Ctx<'_>) {
        if let Some((at, _)) = self.armed {
            if at <= ctx.now() {
                self.armed = None;
            }
        }
        self.conn.on_tick(ctx.now());
    }

    /// Transmits everything ready and re-arms the timer.
    pub fn pump(&mut self, ctx: &mut Ctx<'_>) {
        let conn_id = self.conn.conn_id();
        while let Some(seg) = self.conn.poll_transmit(ctx.now()) {
            let size = tcp_wire_size(&seg);
            ctx.send(
                self.peer,
                size,
                self.flow,
                payload(TcpPacket {
                    conn_id,
                    segment: seg,
                }),
            );
        }
        if let Some(next) = self.conn.next_timeout(ctx.now()) {
            let next = next.max(ctx.now());
            match self.armed {
                Some((at, _)) if at <= next => {}
                _ => {
                    if let Some((_, id)) = self.armed.take() {
                        ctx.cancel_timer(id);
                    }
                    let id = ctx.set_timer(next - ctx.now(), TCP_TIMER_TOKEN);
                    self.armed = Some((next, id));
                }
            }
        }
    }
}

/// Embeds a [`TcpReceiverConn`] into an agent.
pub struct TcpReceiverDriver {
    /// The protocol state machine.
    pub conn: TcpReceiverConn,
    peer: Option<Addr>,
    flow: FlowId,
}

impl TcpReceiverDriver {
    /// Creates a receiver driver tagging ACKs with `flow`.
    pub fn new(conn: TcpReceiverConn, flow: FlowId) -> Self {
        Self {
            conn,
            peer: None,
            flow,
        }
    }

    /// Feeds an incoming packet; returns `true` when consumed.
    pub fn handle_packet(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet) -> bool {
        let Some(tp) = pkt.payload_as::<TcpPacket>() else {
            return false;
        };
        if tp.conn_id != self.conn.conn_id() {
            return false;
        }
        self.peer.get_or_insert(pkt.src);
        self.conn.on_segment(ctx.now(), &tp.segment);
        true
    }

    /// Transmits pending ACK/control segments.
    pub fn pump(&mut self, ctx: &mut Ctx<'_>) {
        let Some(peer) = self.peer else {
            return;
        };
        let conn_id = self.conn.conn_id();
        while let Some(seg) = self.conn.poll_transmit(ctx.now()) {
            let size = tcp_wire_size(&seg);
            ctx.send(
                peer,
                size,
                self.flow,
                payload(TcpPacket {
                    conn_id,
                    segment: seg,
                }),
            );
        }
    }
}

/// Sends a fixed number of fixed-size messages as fast as TCP allows.
pub struct TcpBulkSenderAgent {
    driver: TcpSenderDriver,
    remaining_msgs: u64,
    msg_size: u32,
    backlog_target: usize,
}

impl TcpBulkSenderAgent {
    /// Creates a bulk sender transferring `total_msgs × msg_size` bytes.
    pub fn new(
        conn: TcpSenderConn,
        peer: Addr,
        flow: FlowId,
        total_msgs: u64,
        msg_size: u32,
    ) -> Self {
        Self {
            driver: TcpSenderDriver::new(conn, peer, flow),
            remaining_msgs: total_msgs,
            msg_size,
            backlog_target: 128,
        }
    }

    /// Access to the connection (stats).
    pub fn conn(&self) -> &TcpSenderConn {
        &self.driver.conn
    }

    fn refill(&mut self, now: Time) {
        while self.remaining_msgs > 0
            && self.driver.conn.backlog_segments() < self.backlog_target
        {
            self.driver.conn.send_message(now, self.msg_size);
            self.remaining_msgs -= 1;
        }
        if self.remaining_msgs == 0 {
            self.driver.conn.finish();
        }
    }
}

impl Agent for TcpBulkSenderAgent {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.refill(ctx.now());
        self.driver.pump(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        if self.driver.handle_packet(ctx, &pkt) {
            self.driver.conn.take_events();
            self.refill(ctx.now());
            self.driver.pump(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TCP_TIMER_TOKEN {
            self.driver.handle_timer(ctx);
            self.refill(ctx.now());
            self.driver.pump(ctx);
        }
    }
}

/// Receives TCP messages and records [`FlowMetrics`].
pub struct TcpSinkAgent {
    driver: TcpReceiverDriver,
    /// Receiver-side application metrics.
    pub metrics: FlowMetrics,
    /// Raw messages, retained when requested.
    pub messages: Vec<TcpDeliveredMsg>,
    keep_messages: bool,
}

impl TcpSinkAgent {
    /// Creates a sink for connection `conn_id`.
    pub fn new(conn_id: u32, cfg: TcpConfig, flow: FlowId) -> Self {
        Self {
            driver: TcpReceiverDriver::new(TcpReceiverConn::new(conn_id, cfg), flow),
            metrics: FlowMetrics::new(),
            messages: Vec::new(),
            keep_messages: false,
        }
    }

    /// Retain every delivered message.
    pub fn keep_messages(mut self) -> Self {
        self.keep_messages = true;
        self
    }

    /// Whether the transfer finished cleanly.
    pub fn is_finished(&self) -> bool {
        self.driver.conn.is_finished()
    }

    /// Access to the connection (stats).
    pub fn conn(&self) -> &TcpReceiverConn {
        &self.driver.conn
    }
}

impl Agent for TcpSinkAgent {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        if !self.driver.handle_packet(ctx, &pkt) {
            return;
        }
        for msg in self.driver.conn.take_messages() {
            self.metrics
                .on_message(msg.delivered_at, msg.sent_at, u64::from(msg.size), true);
            if self.keep_messages {
                self.messages.push(msg);
            }
        }
        self.driver.conn.take_events();
        self.driver.pump(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iq_netsim::{time, LinkSpec, Simulator};

    #[test]
    fn tcp_bulk_transfer_completes() {
        let mut sim = Simulator::new(9);
        let a = sim.add_node();
        let b = sim.add_node();
        sim.add_duplex_link(a, b, LinkSpec::new(10e6, time::millis(5), 64_000));
        let cfg = TcpConfig::default();
        sim.add_agent(
            a,
            1,
            Box::new(TcpBulkSenderAgent::new(
                TcpSenderConn::new(2, cfg.clone()),
                Addr::new(b, 1),
                FlowId(2),
                150,
                1400,
            )),
        );
        let rx = sim.add_agent(b, 1, Box::new(TcpSinkAgent::new(2, cfg, FlowId(2))));
        sim.run_until(time::secs(30.0));
        let sink = sim.agent::<TcpSinkAgent>(rx).unwrap();
        assert!(sink.is_finished());
        assert_eq!(sink.metrics.messages(), 150);
    }

    #[test]
    fn tcp_recovers_from_random_loss() {
        let mut sim = Simulator::new(10);
        let a = sim.add_node();
        let b = sim.add_node();
        sim.add_duplex_link(
            a,
            b,
            LinkSpec::new(10e6, time::millis(5), 64_000).with_random_loss(0.03),
        );
        let cfg = TcpConfig::default();
        let tx = sim.add_agent(
            a,
            1,
            Box::new(TcpBulkSenderAgent::new(
                TcpSenderConn::new(2, cfg.clone()),
                Addr::new(b, 1),
                FlowId(2),
                300,
                1400,
            )),
        );
        let rx = sim.add_agent(b, 1, Box::new(TcpSinkAgent::new(2, cfg, FlowId(2))));
        sim.run_until(time::secs(120.0));
        let sink = sim.agent::<TcpSinkAgent>(rx).unwrap();
        assert!(sink.is_finished(), "lossy TCP transfer did not finish");
        assert_eq!(sink.metrics.messages(), 300);
        let sender = sim.agent::<TcpBulkSenderAgent>(tx).unwrap();
        assert!(sender.conn().stats().retransmits > 0);
    }

    #[test]
    fn two_tcp_flows_share_a_bottleneck_roughly_fairly() {
        let mut sim = Simulator::new(21);
        let spec = iq_netsim::DumbbellSpec::paper_default(2);
        let db = iq_netsim::build_dumbbell(&mut sim, &spec);
        let cfg = TcpConfig::default();
        let msgs = 3000u64;
        for (i, (&l, &r)) in db
            .left_hosts
            .iter()
            .zip(&db.right_hosts)
            .enumerate()
        {
            let conn_id = i as u32 + 1;
            sim.add_agent(
                l,
                1,
                Box::new(TcpBulkSenderAgent::new(
                    TcpSenderConn::new(conn_id, cfg.clone()),
                    Addr::new(r, 1),
                    FlowId(conn_id),
                    msgs,
                    1400,
                )),
            );
        }
        let rx0 = sim.add_agent(
            db.right_hosts[0],
            1,
            Box::new(TcpSinkAgent::new(1, cfg.clone(), FlowId(1))),
        );
        let rx1 = sim.add_agent(
            db.right_hosts[1],
            1,
            Box::new(TcpSinkAgent::new(2, cfg.clone(), FlowId(2))),
        );
        sim.run_until(time::secs(20.0));
        let t0 = sim.agent::<TcpSinkAgent>(rx0).unwrap().metrics.throughput_kbps();
        let t1 = sim.agent::<TcpSinkAgent>(rx1).unwrap().metrics.throughput_kbps();
        assert!(t0 > 100.0 && t1 > 100.0, "both must progress: {t0} / {t1}");
        let ratio = t0.max(t1) / t0.min(t1).max(1.0);
        assert!(ratio < 3.0, "gross unfairness: {t0} vs {t1}");
    }
}
