//! TCP segments, modelled at MSS granularity.
//!
//! Like the RUDP model, segments travel as typed payloads with an
//! explicit wire size. Application-message framing metadata rides along
//! for the experiment harness (it does not influence protocol dynamics;
//! real TCP would recover boundaries from an application-level framing
//! layer).

use iq_netsim::Time;

/// Modelled IP + TCP header bytes per segment.
pub const TCP_HEADER_BYTES: u32 = 40;

/// Pure-ACK wire size.
pub const TCP_ACK_BYTES: u32 = TCP_HEADER_BYTES;

/// One data segment.
#[derive(Debug, Clone, PartialEq)]
pub struct TcpDataSeg {
    /// Segment sequence number (per MSS-unit, increasing).
    pub seq: u64,
    /// Application message this fragment belongs to.
    pub msg_id: u64,
    /// Fragment index within the message.
    pub frag_idx: u16,
    /// Total fragments in the message.
    pub frag_count: u16,
    /// Payload bytes.
    pub len: u32,
    /// When the application emitted the message.
    pub msg_sent_at: Time,
    /// Transmission timestamp (RTT echo).
    pub tx_at: Time,
    /// Karn: retransmissions carry no RTT echo.
    pub retransmit: bool,
}

/// A cumulative acknowledgement.
#[derive(Debug, Clone, PartialEq)]
pub struct TcpAckSeg {
    /// Next expected sequence number.
    pub cum_ack: u64,
    /// Advertised receive window, segments.
    pub recv_window: u32,
    /// `tx_at` of the triggering segment (`None` for dup-acks and
    /// retransmissions).
    pub echo_tx_at: Option<Time>,
}

/// All TCP segment kinds used by the model.
#[derive(Debug, Clone, PartialEq)]
pub enum TcpSegment {
    /// Connection request.
    Syn,
    /// Connection accept with the initial advertised window.
    SynAck {
        /// Advertised receive window, segments.
        recv_window: u32,
    },
    /// Data.
    Data(TcpDataSeg),
    /// Acknowledgement.
    Ack(TcpAckSeg),
    /// End of stream.
    Fin {
        /// One past the last sequence number used.
        final_seq: u64,
    },
    /// Acknowledges a FIN.
    FinAck,
}

/// Payload type placed in simulator packets.
#[derive(Debug, Clone, PartialEq)]
pub struct TcpPacket {
    /// Connection identifier.
    pub conn_id: u32,
    /// The segment.
    pub segment: TcpSegment,
}

/// Wire size of a segment in bytes.
pub fn tcp_wire_size(seg: &TcpSegment) -> u32 {
    match seg {
        TcpSegment::Data(d) => TCP_HEADER_BYTES + d.len,
        TcpSegment::Ack(_) => TCP_ACK_BYTES,
        _ => TCP_HEADER_BYTES,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes() {
        let d = TcpSegment::Data(TcpDataSeg {
            seq: 0,
            msg_id: 0,
            frag_idx: 0,
            frag_count: 1,
            len: 1400,
            msg_sent_at: 0,
            tx_at: 0,
            retransmit: false,
        });
        assert_eq!(tcp_wire_size(&d), 1440);
        assert_eq!(tcp_wire_size(&TcpSegment::Syn), 40);
        assert_eq!(
            tcp_wire_size(&TcpSegment::Ack(TcpAckSeg {
                cum_ack: 0,
                recv_window: 1,
                echo_tx_at: None,
            })),
            40
        );
    }
}
